package netcdf

import (
	"math/rand"
	"testing"
)

// buildRecordFile makes a file with one unlimited dim, a fixed var and
// two record vars (interleaving exercised).
func buildRecordFile(records int) *File {
	f := &File{}
	dTime := f.AddDim("time", 0) // unlimited
	dGPU := f.AddDim("gpu", 3)
	fixed := []float64{7, 8, 9}
	f.AddVar(Var{Name: "gpu_id", Type: Int, Dims: []int{dGPU}, Data: fixed})

	loss := make([]float64, records)
	power := make([]float64, records*3)
	for i := range loss {
		loss[i] = 2.0 / float64(i+1)
	}
	for i := range power {
		power[i] = 300 + float64(i)
	}
	f.AddVar(Var{Name: "loss", Type: Double, Dims: []int{dTime}, Data: loss})
	f.AddVar(Var{Name: "power", Type: Float, Dims: []int{dTime, dGPU}, Data: power})
	return f
}

func TestRecordRoundTrip(t *testing.T) {
	f := buildRecordFile(5)
	raw, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	loss, ok := back.VarByName("loss")
	if !ok || len(loss.Data) != 5 {
		t.Fatalf("loss = %+v", loss)
	}
	for i := range loss.Data {
		if loss.Data[i] != 2.0/float64(i+1) {
			t.Errorf("loss[%d] = %v", i, loss.Data[i])
		}
	}
	power, _ := back.VarByName("power")
	if len(power.Data) != 15 {
		t.Fatalf("power len = %d", len(power.Data))
	}
	for i := range power.Data {
		if power.Data[i] != 300+float64(i) {
			t.Fatalf("power[%d] = %v (interleaving broken)", i, power.Data[i])
		}
	}
	gpuID, _ := back.VarByName("gpu_id")
	if gpuID.Data[2] != 9 {
		t.Errorf("fixed var corrupted: %v", gpuID.Data)
	}
}

func TestRecordZeroRecords(t *testing.T) {
	f := buildRecordFile(0)
	raw, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	loss, ok := back.VarByName("loss")
	if !ok || len(loss.Data) != 0 {
		t.Fatalf("loss = %+v", loss)
	}
}

func TestRecordSingleVarNoPadding(t *testing.T) {
	// One record variable of a 2-byte type: the special case where
	// record slabs are not padded to 4 bytes.
	f := &File{}
	dTime := f.AddDim("time", 0)
	f.AddVar(Var{Name: "s", Type: Short, Dims: []int{dTime}, Data: []float64{1, -2, 3, -4, 5}})
	raw, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := back.VarByName("s")
	want := []float64{1, -2, 3, -4, 5}
	for i := range want {
		if s.Data[i] != want[i] {
			t.Fatalf("s = %v", s.Data)
		}
	}
}

func TestRecordCharVariable(t *testing.T) {
	f := &File{}
	dTime := f.AddDim("time", 0)
	dW := f.AddDim("width", 3)
	f.AddVar(Var{Name: "tag", Type: Char, Dims: []int{dTime, dW}, Text: "abcdefghi"})
	f.AddVar(Var{Name: "v", Type: Double, Dims: []int{dTime}, Data: []float64{1, 2, 3}})
	raw, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	tag, _ := back.VarByName("tag")
	if tag.Text != "abcdefghi" {
		t.Errorf("tag = %q", tag.Text)
	}
	v, _ := back.VarByName("v")
	if v.Data[2] != 3 {
		t.Errorf("v = %v", v.Data)
	}
}

func TestRecordErrors(t *testing.T) {
	// Record dim not first.
	f := &File{}
	dTime := f.AddDim("time", 0)
	dX := f.AddDim("x", 2)
	f.AddVar(Var{Name: "bad", Type: Double, Dims: []int{dX, dTime}, Data: []float64{1, 2}})
	if _, err := f.Encode(); err == nil {
		t.Error("record dim in non-first position must fail")
	}

	// Two unlimited dims.
	g := &File{}
	g.AddDim("t1", 0)
	g.AddDim("t2", 0)
	if _, err := g.Encode(); err == nil {
		t.Error("two record dims must fail")
	}

	// Disagreeing record counts.
	h := &File{}
	dT := h.AddDim("time", 0)
	h.AddVar(Var{Name: "a", Type: Double, Dims: []int{dT}, Data: []float64{1, 2}})
	h.AddVar(Var{Name: "b", Type: Double, Dims: []int{dT}, Data: []float64{1, 2, 3}})
	if _, err := h.Encode(); err == nil {
		t.Error("disagreeing record counts must fail")
	}
}

func TestRecordFuzzNoPanic(t *testing.T) {
	raw, err := buildRecordFile(4).Encode()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(123))
	for i := 0; i < 500; i++ {
		mut := append([]byte(nil), raw...)
		for j := 0; j < 1+rng.Intn(8); j++ {
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		}
		_, _ = Decode(mut) // must not panic or OOM
	}
}
