package netcdf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func buildSample() *File {
	f := &File{}
	dTime := f.AddDim("time", 5)
	dGPU := f.AddDim("gpu", 2)
	f.Attrs = append(f.Attrs,
		StrAttr("title", "yProv4ML metrics"),
		DoubleAttr("version", 1.5),
		IntAttr("n_runs", 3),
	)
	loss := make([]float64, 5)
	for i := range loss {
		loss[i] = 2.0 / float64(i+1)
	}
	f.AddVar(Var{
		Name: "loss", Type: Double, Dims: []int{dTime},
		Attrs: []Attr{StrAttr("units", "nats")},
		Data:  loss,
	})
	power := make([]float64, 10)
	for i := range power {
		power[i] = 300 + float64(i)
	}
	f.AddVar(Var{Name: "gpu_power", Type: Float, Dims: []int{dTime, dGPU}, Data: power})
	f.AddVar(Var{Name: "step", Type: Int, Dims: []int{dTime}, Data: []float64{0, 1, 2, 3, 4}})
	f.AddVar(Var{Name: "tag", Type: Char, Dims: []int{dGPU}, Text: "ab"})
	return f
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := buildSample()
	raw, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(raw[:3]) != "CDF" || raw[3] != 1 {
		t.Fatalf("bad magic: % x", raw[:4])
	}
	back, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Dims) != 2 || back.Dims[0].Name != "time" || back.Dims[1].Len != 2 {
		t.Fatalf("dims = %+v", back.Dims)
	}
	if len(back.Attrs) != 3 {
		t.Fatalf("attrs = %+v", back.Attrs)
	}
	if back.Attrs[0].Str != "yProv4ML metrics" {
		t.Errorf("title = %q", back.Attrs[0].Str)
	}
	if back.Attrs[1].Nums[0] != 1.5 {
		t.Errorf("version = %v", back.Attrs[1].Nums)
	}
	loss, ok := back.VarByName("loss")
	if !ok {
		t.Fatal("loss variable missing")
	}
	if len(loss.Data) != 5 || loss.Data[4] != 2.0/5 {
		t.Errorf("loss data = %v", loss.Data)
	}
	if loss.Attrs[0].Str != "nats" {
		t.Errorf("loss units = %+v", loss.Attrs)
	}
	tag, ok := back.VarByName("tag")
	if !ok || tag.Text != "ab" {
		t.Errorf("tag = %+v", tag)
	}
	step, _ := back.VarByName("step")
	if step.Type != Int || step.Data[3] != 3 {
		t.Errorf("step = %+v", step)
	}
}

func TestFloatPrecisionRoundTrip(t *testing.T) {
	f := &File{}
	d := f.AddDim("x", 3)
	f.AddVar(Var{Name: "v", Type: Float, Dims: []int{d}, Data: []float64{0.5, -1.25, 1e10}})
	raw, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := back.VarByName("v")
	want := []float64{0.5, -1.25, float64(float32(1e10))}
	for i := range want {
		if v.Data[i] != want[i] {
			t.Errorf("v[%d] = %v, want %v", i, v.Data[i], want[i])
		}
	}
}

func TestScalarVariable(t *testing.T) {
	f := &File{}
	f.AddVar(Var{Name: "pi", Type: Double, Data: []float64{math.Pi}})
	raw, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := back.VarByName("pi")
	if !ok || v.Data[0] != math.Pi {
		t.Fatalf("pi = %+v", v)
	}
}

func TestEmptyFile(t *testing.T) {
	f := &File{}
	raw, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Dims)+len(back.Vars)+len(back.Attrs) != 0 {
		t.Fatalf("empty file round-trip = %+v", back)
	}
}

func TestEncodeSizeMismatch(t *testing.T) {
	f := &File{}
	d := f.AddDim("x", 4)
	f.AddVar(Var{Name: "v", Type: Double, Dims: []int{d}, Data: []float64{1}})
	if _, err := f.Encode(); err == nil {
		t.Fatal("size mismatch must fail")
	}
}

func TestEncodeBadDimID(t *testing.T) {
	f := &File{}
	f.AddVar(Var{Name: "v", Type: Double, Dims: []int{7}, Data: []float64{1}})
	if _, err := f.Encode(); err == nil {
		t.Fatal("bad dim id must fail")
	}
}

func TestDecodeTruncated(t *testing.T) {
	raw, err := buildSample().Encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{3, 4, 8, 20, len(raw) / 2, len(raw) - 3} {
		if _, err := Decode(raw[:cut]); err == nil {
			t.Errorf("decode of %d-byte prefix must fail", cut)
		}
	}
}

func TestDecodeBadMagic(t *testing.T) {
	if _, err := Decode([]byte("NOPE....")); err == nil {
		t.Fatal("bad magic must fail")
	}
	if _, err := Decode([]byte{'C', 'D', 'F', 2, 0, 0, 0, 0}); err == nil {
		t.Fatal("CDF-2 must be rejected")
	}
}

func TestAlignment(t *testing.T) {
	// A char variable with length not divisible by 4 must not corrupt
	// the following variable.
	f := &File{}
	d3 := f.AddDim("three", 3)
	d2 := f.AddDim("two", 2)
	f.AddVar(Var{Name: "s", Type: Char, Dims: []int{d3}, Text: "abc"})
	f.AddVar(Var{Name: "v", Type: Double, Dims: []int{d2}, Data: []float64{1.5, -2.5}})
	raw, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := back.VarByName("v")
	if v.Data[0] != 1.5 || v.Data[1] != -2.5 {
		t.Fatalf("alignment bug: v = %v", v.Data)
	}
	if v.Type != Double {
		t.Fatalf("v type = %v", v.Type)
	}
}

func TestShortAndByteTypes(t *testing.T) {
	f := &File{}
	d := f.AddDim("x", 3)
	f.AddVar(Var{Name: "s", Type: Short, Dims: []int{d}, Data: []float64{-2, 0, 30000}})
	f.AddVar(Var{Name: "b", Type: Byte, Dims: []int{d}, Data: []float64{-128, 0, 127}})
	raw, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := back.VarByName("s")
	b, _ := back.VarByName("b")
	if s.Data[0] != -2 || s.Data[2] != 30000 {
		t.Errorf("short = %v", s.Data)
	}
	if b.Data[0] != -128 || b.Data[2] != 127 {
		t.Errorf("byte = %v", b.Data)
	}
}

func TestQuickDoubleRoundTrip(t *testing.T) {
	f := func(values []float64) bool {
		for i, v := range values {
			if math.IsNaN(v) {
				values[i] = 0
			}
		}
		if len(values) == 0 {
			values = []float64{0}
		}
		if len(values) > 500 {
			values = values[:500]
		}
		nc := &File{}
		d := nc.AddDim("n", len(values))
		nc.AddVar(Var{Name: "v", Type: Double, Dims: []int{d}, Data: values})
		raw, err := nc.Encode()
		if err != nil {
			return false
		}
		back, err := Decode(raw)
		if err != nil {
			return false
		}
		v, ok := back.VarByName("v")
		if !ok || len(v.Data) != len(values) {
			return false
		}
		for i := range values {
			if v.Data[i] != values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFuzzDecodeNoPanic(t *testing.T) {
	// Random mutations of a valid file must never panic the decoder.
	raw, err := buildSample().Encode()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		mut := append([]byte(nil), raw...)
		for j := 0; j < 1+rng.Intn(8); j++ {
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		}
		_, _ = Decode(mut) // must not panic
	}
}
