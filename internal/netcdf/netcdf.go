// Package netcdf implements a writer and reader for a subset of the
// NetCDF classic binary format (CDF-1): fixed-size dimensions, one
// unlimited (record) dimension with interleaved record storage, global
// and per-variable attributes, and byte/char/short/int/float/double
// variables.
//
// The format follows the published classic file specification: a
// big-endian header (magic "CDF\x01", numrecs, dim list, global
// attribute list, variable list with data offsets) followed by variable
// data, each section padded to 4-byte boundaries.
package netcdf

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Type is a NetCDF external data type.
type Type int32

// NetCDF classic external types.
const (
	Byte   Type = 1
	Char   Type = 2
	Short  Type = 3
	Int    Type = 4
	Float  Type = 5
	Double Type = 6
)

// Size returns the size of one element in bytes.
func (t Type) Size() int {
	switch t {
	case Byte, Char:
		return 1
	case Short:
		return 2
	case Int, Float:
		return 4
	case Double:
		return 8
	}
	return 0
}

func (t Type) String() string {
	switch t {
	case Byte:
		return "byte"
	case Char:
		return "char"
	case Short:
		return "short"
	case Int:
		return "int"
	case Float:
		return "float"
	case Double:
		return "double"
	}
	return fmt.Sprintf("type(%d)", int32(t))
}

// List tags in the classic header.
const (
	tagDimension int32 = 0x0A
	tagVariable  int32 = 0x0B
	tagAttribute int32 = 0x0C
)

// Dim is a named fixed-size dimension.
type Dim struct {
	Name string
	Len  int
}

// Attr is a named attribute. Exactly one of Str or Nums is used: Str for
// Char attributes, Nums (as float64) for all numeric types.
type Attr struct {
	Name string
	Type Type
	Str  string
	Nums []float64
}

// StrAttr builds a char attribute.
func StrAttr(name, value string) Attr {
	return Attr{Name: name, Type: Char, Str: value}
}

// DoubleAttr builds a double attribute.
func DoubleAttr(name string, values ...float64) Attr {
	return Attr{Name: name, Type: Double, Nums: values}
}

// IntAttr builds an int attribute.
func IntAttr(name string, values ...int32) Attr {
	nums := make([]float64, len(values))
	for i, v := range values {
		nums[i] = float64(v)
	}
	return Attr{Name: name, Type: Int, Nums: nums}
}

// Var is a variable over zero or more dimensions. Data is stored as
// float64 regardless of external type (Char variables use Text instead).
type Var struct {
	Name  string
	Type  Type
	Dims  []int // indexes into File.Dims
	Attrs []Attr
	Data  []float64
	Text  string // for Char variables
}

// File is an in-memory NetCDF classic dataset.
type File struct {
	Dims  []Dim
	Attrs []Attr // global attributes
	Vars  []Var
}

// AddDim appends a dimension and returns its id.
func (f *File) AddDim(name string, length int) int {
	f.Dims = append(f.Dims, Dim{Name: name, Len: length})
	return len(f.Dims) - 1
}

// AddVar appends a variable and returns its index.
func (f *File) AddVar(v Var) int {
	f.Vars = append(f.Vars, v)
	return len(f.Vars) - 1
}

// VarByName returns the variable with the given name.
func (f *File) VarByName(name string) (*Var, bool) {
	for i := range f.Vars {
		if f.Vars[i].Name == name {
			return &f.Vars[i], true
		}
	}
	return nil, false
}

// elemCount returns the number of elements in v given the file dims.
func (f *File) elemCount(v *Var) (int, error) {
	n := 1
	for _, di := range v.Dims {
		if di < 0 || di >= len(f.Dims) {
			return 0, fmt.Errorf("netcdf: variable %q references bad dim id %d", v.Name, di)
		}
		n *= f.Dims[di].Len
		if n < 0 || n > 1<<40 {
			return 0, fmt.Errorf("netcdf: variable %q element count overflow", v.Name)
		}
	}
	return n, nil
}

func pad4(n int) int { return (n + 3) &^ 3 }

// --- encoding ---------------------------------------------------------

type writer struct {
	buf []byte
}

func (w *writer) i32(v int32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(v))
	w.buf = append(w.buf, b[:]...)
}

func (w *writer) name(s string) {
	w.i32(int32(len(s)))
	w.buf = append(w.buf, s...)
	for len(w.buf)%4 != 0 {
		w.buf = append(w.buf, 0)
	}
}

func (w *writer) attrValues(a Attr) error {
	switch a.Type {
	case Char:
		w.i32(int32(len(a.Str)))
		w.buf = append(w.buf, a.Str...)
		for len(w.buf)%4 != 0 {
			w.buf = append(w.buf, 0)
		}
	case Byte, Short, Int, Float, Double:
		w.i32(int32(len(a.Nums)))
		for _, v := range a.Nums {
			w.value(a.Type, v)
		}
		for len(w.buf)%4 != 0 {
			w.buf = append(w.buf, 0)
		}
	default:
		return fmt.Errorf("netcdf: attribute %q has unsupported type %v", a.Name, a.Type)
	}
	return nil
}

func (w *writer) value(t Type, v float64) {
	switch t {
	case Byte:
		w.buf = append(w.buf, byte(int8(v)))
	case Char:
		w.buf = append(w.buf, byte(v))
	case Short:
		var b [2]byte
		binary.BigEndian.PutUint16(b[:], uint16(int16(v)))
		w.buf = append(w.buf, b[:]...)
	case Int:
		w.i32(int32(v))
	case Float:
		w.i32(int32(math.Float32bits(float32(v))))
	case Double:
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], math.Float64bits(v))
		w.buf = append(w.buf, b[:]...)
	}
}

func (w *writer) attrList(attrs []Attr) error {
	if len(attrs) == 0 {
		w.i32(0) // ABSENT: zero tag
		w.i32(0)
		return nil
	}
	w.i32(tagAttribute)
	w.i32(int32(len(attrs)))
	for _, a := range attrs {
		w.name(a.Name)
		w.i32(int32(a.Type))
		if err := w.attrValues(a); err != nil {
			return err
		}
	}
	return nil
}

// recordDim returns the index of the unlimited dimension (Len == 0),
// or -1. At most one is allowed, as in the classic format.
func (f *File) recordDim() (int, error) {
	rec := -1
	for i, d := range f.Dims {
		if d.Len == 0 {
			if rec >= 0 {
				return 0, fmt.Errorf("netcdf: multiple record dimensions (%q and %q)", f.Dims[rec].Name, d.Name)
			}
			rec = i
		}
	}
	return rec, nil
}

// isRecordVar reports whether v varies along the record dimension
// (which, per the classic format, must be its first dimension).
func (f *File) isRecordVar(v *Var, recDim int) (bool, error) {
	if recDim < 0 {
		return false, nil
	}
	for i, di := range v.Dims {
		if di == recDim {
			if i != 0 {
				return false, fmt.Errorf("netcdf: variable %q uses the record dimension in position %d (must be first)", v.Name, i)
			}
			return true, nil
		}
	}
	return false, nil
}

// recSize returns the number of elements in one record of v.
func (f *File) recSize(v *Var) (int, error) {
	n := 1
	for _, di := range v.Dims[1:] {
		if di < 0 || di >= len(f.Dims) {
			return 0, fmt.Errorf("netcdf: variable %q references bad dim id %d", v.Name, di)
		}
		n *= f.Dims[di].Len
		if n < 0 || n > 1<<40 {
			return 0, fmt.Errorf("netcdf: variable %q record size overflow", v.Name)
		}
	}
	return n, nil
}

// dataLen returns the element count held by a variable's payload.
func (v *Var) dataLen() int {
	if v.Type == Char {
		return len(v.Text)
	}
	return len(v.Data)
}

// Encode serializes the dataset to CDF-1 bytes, supporting one
// unlimited (record) dimension: variables whose first dimension is the
// record dimension are stored as interleaved per-record slabs after the
// fixed-size variables.
func (f *File) Encode() ([]byte, error) {
	recDim, err := f.recordDim()
	if err != nil {
		return nil, err
	}

	// First pass: classify variables and compute sizes. vsize for fixed
	// vars is the padded full payload; for record vars it is the padded
	// size of ONE record (unpadded when there is exactly one record var,
	// per the classic-format special case).
	vsizes := make([]int, len(f.Vars))
	isRec := make([]bool, len(f.Vars))
	recSizes := make([]int, len(f.Vars)) // elements per record
	numrecs := -1
	recVarCount := 0
	for i := range f.Vars {
		v := &f.Vars[i]
		rec, err := f.isRecordVar(v, recDim)
		if err != nil {
			return nil, err
		}
		if rec {
			recVarCount++
		}
	}
	for i := range f.Vars {
		v := &f.Vars[i]
		if v.Type.Size() == 0 {
			return nil, fmt.Errorf("netcdf: variable %q has unsupported type %v", v.Name, v.Type)
		}
		rec, _ := f.isRecordVar(v, recDim)
		isRec[i] = rec
		if rec {
			rs, err := f.recSize(v)
			if err != nil {
				return nil, err
			}
			if rs == 0 {
				return nil, fmt.Errorf("netcdf: record variable %q has zero record size", v.Name)
			}
			recSizes[i] = rs
			if v.dataLen()%rs != 0 {
				return nil, fmt.Errorf("netcdf: record variable %q has %d values, not a multiple of record size %d", v.Name, v.dataLen(), rs)
			}
			n := v.dataLen() / rs
			if numrecs >= 0 && n != numrecs {
				return nil, fmt.Errorf("netcdf: record variables disagree on record count (%d vs %d)", n, numrecs)
			}
			numrecs = n
			if recVarCount == 1 {
				vsizes[i] = rs * v.Type.Size()
			} else {
				vsizes[i] = pad4(rs * v.Type.Size())
			}
			continue
		}
		n, err := f.elemCount(v)
		if err != nil {
			return nil, err
		}
		if v.Type == Char {
			if len(v.Text) != n {
				return nil, fmt.Errorf("netcdf: char variable %q has %d chars, want %d", v.Name, len(v.Text), n)
			}
		} else if len(v.Data) != n {
			return nil, fmt.Errorf("netcdf: variable %q has %d values, want %d", v.Name, len(v.Data), n)
		}
		vsizes[i] = pad4(n * v.Type.Size())
	}
	if numrecs < 0 {
		numrecs = 0
	}

	encodeHeader := func(begins []int) ([]byte, error) {
		w := &writer{}
		w.buf = append(w.buf, 'C', 'D', 'F', 1)
		w.i32(int32(numrecs))
		if len(f.Dims) == 0 {
			w.i32(0)
			w.i32(0)
		} else {
			w.i32(tagDimension)
			w.i32(int32(len(f.Dims)))
			for _, d := range f.Dims {
				w.name(d.Name)
				w.i32(int32(d.Len))
			}
		}
		if err := w.attrList(f.Attrs); err != nil {
			return nil, err
		}
		if len(f.Vars) == 0 {
			w.i32(0)
			w.i32(0)
		} else {
			w.i32(tagVariable)
			w.i32(int32(len(f.Vars)))
			for i := range f.Vars {
				v := &f.Vars[i]
				w.name(v.Name)
				w.i32(int32(len(v.Dims)))
				for _, di := range v.Dims {
					w.i32(int32(di))
				}
				if err := w.attrList(v.Attrs); err != nil {
					return nil, err
				}
				w.i32(int32(v.Type))
				w.i32(int32(vsizes[i]))
				w.i32(int32(begins[i])) // CDF-1: 32-bit offsets
			}
		}
		return w.buf, nil
	}

	// Compute header size with zero offsets, then assign real offsets:
	// fixed variables first, then the interleaved record block.
	zero := make([]int, len(f.Vars))
	hdr, err := encodeHeader(zero)
	if err != nil {
		return nil, err
	}
	begins := make([]int, len(f.Vars))
	off := len(hdr)
	for i := range f.Vars {
		if isRec[i] {
			continue
		}
		begins[i] = off
		off += vsizes[i]
	}
	recStart := off
	recStride := 0
	for i := range f.Vars {
		if !isRec[i] {
			continue
		}
		begins[i] = recStart + recStride
		recStride += vsizes[i]
	}
	hdr, err = encodeHeader(begins)
	if err != nil {
		return nil, err
	}

	out := make([]byte, 0, recStart+numrecs*recStride)
	out = append(out, hdr...)
	// Fixed variables.
	for i := range f.Vars {
		if isRec[i] {
			continue
		}
		v := &f.Vars[i]
		w := &writer{buf: out}
		if v.Type == Char {
			w.buf = append(w.buf, v.Text...)
		} else {
			for _, val := range v.Data {
				w.value(v.Type, val)
			}
		}
		for len(w.buf)%4 != 0 {
			w.buf = append(w.buf, 0)
		}
		out = w.buf
	}
	// Record block: records interleave one slab per record variable.
	for rec := 0; rec < numrecs; rec++ {
		for i := range f.Vars {
			if !isRec[i] {
				continue
			}
			v := &f.Vars[i]
			w := &writer{buf: out}
			slabStart := len(w.buf)
			if v.Type == Char {
				w.buf = append(w.buf, v.Text[rec*recSizes[i]:(rec+1)*recSizes[i]]...)
			} else {
				for _, val := range v.Data[rec*recSizes[i] : (rec+1)*recSizes[i]] {
					w.value(v.Type, val)
				}
			}
			for len(w.buf)-slabStart < vsizes[i] {
				w.buf = append(w.buf, 0)
			}
			out = w.buf
		}
	}
	return out, nil
}

// --- decoding ---------------------------------------------------------

type reader struct {
	data []byte
	off  int
}

func (r *reader) need(n int) error {
	if r.off+n > len(r.data) {
		return fmt.Errorf("netcdf: truncated file at offset %d (need %d bytes)", r.off, n)
	}
	return nil
}

func (r *reader) i32() (int32, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := int32(binary.BigEndian.Uint32(r.data[r.off:]))
	r.off += 4
	return v, nil
}

func (r *reader) name() (string, error) {
	n, err := r.i32()
	if err != nil {
		return "", err
	}
	if n < 0 {
		return "", fmt.Errorf("netcdf: negative name length %d", n)
	}
	if err := r.need(pad4(int(n))); err != nil {
		return "", err
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += pad4(int(n))
	return s, nil
}

func (r *reader) value(t Type) (float64, error) {
	if err := r.need(t.Size()); err != nil {
		return 0, err
	}
	var v float64
	switch t {
	case Byte:
		v = float64(int8(r.data[r.off]))
	case Char:
		v = float64(r.data[r.off])
	case Short:
		v = float64(int16(binary.BigEndian.Uint16(r.data[r.off:])))
	case Int:
		v = float64(int32(binary.BigEndian.Uint32(r.data[r.off:])))
	case Float:
		v = float64(math.Float32frombits(binary.BigEndian.Uint32(r.data[r.off:])))
	case Double:
		v = math.Float64frombits(binary.BigEndian.Uint64(r.data[r.off:]))
	default:
		return 0, fmt.Errorf("netcdf: unsupported type %v", t)
	}
	r.off += t.Size()
	return v, nil
}

func (r *reader) attrList() ([]Attr, error) {
	tag, err := r.i32()
	if err != nil {
		return nil, err
	}
	count, err := r.i32()
	if err != nil {
		return nil, err
	}
	if tag == 0 {
		if count != 0 {
			return nil, fmt.Errorf("netcdf: ABSENT attr list with nonzero count %d", count)
		}
		return nil, nil
	}
	if tag != tagAttribute {
		return nil, fmt.Errorf("netcdf: expected attribute tag, got 0x%x", tag)
	}
	// Each attribute occupies at least 12 header bytes; reject counts the
	// file cannot possibly hold instead of trusting them for allocation.
	if int(count) < 0 || int(count)*12 > len(r.data) {
		return nil, fmt.Errorf("netcdf: implausible attribute count %d", count)
	}
	attrs := make([]Attr, 0, count)
	for i := int32(0); i < count; i++ {
		nm, err := r.name()
		if err != nil {
			return nil, err
		}
		t, err := r.i32()
		if err != nil {
			return nil, err
		}
		typ := Type(t)
		if typ.Size() == 0 {
			return nil, fmt.Errorf("netcdf: attribute %q has bad type %d", nm, t)
		}
		nelems, err := r.i32()
		if err != nil {
			return nil, err
		}
		if nelems < 0 {
			return nil, fmt.Errorf("netcdf: attribute %q has negative count", nm)
		}
		a := Attr{Name: nm, Type: typ}
		if typ == Char {
			if err := r.need(pad4(int(nelems))); err != nil {
				return nil, err
			}
			a.Str = string(r.data[r.off : r.off+int(nelems)])
			r.off += pad4(int(nelems))
		} else {
			// Bounds-check before allocating: a corrupt count must not
			// trigger a huge allocation.
			if err := r.need(pad4(int(nelems) * typ.Size())); err != nil {
				return nil, err
			}
			a.Nums = make([]float64, nelems)
			for j := range a.Nums {
				v, err := r.value(typ)
				if err != nil {
					return nil, err
				}
				a.Nums[j] = v
			}
			for r.off%4 != 0 {
				r.off++
			}
		}
		attrs = append(attrs, a)
	}
	return attrs, nil
}

// Decode parses CDF-1 bytes into a File.
func Decode(data []byte) (*File, error) {
	if len(data) < 4 || data[0] != 'C' || data[1] != 'D' || data[2] != 'F' {
		return nil, fmt.Errorf("netcdf: bad magic")
	}
	if data[3] != 1 {
		return nil, fmt.Errorf("netcdf: unsupported version %d (only CDF-1)", data[3])
	}
	r := &reader{data: data, off: 4}
	numrecs32, err := r.i32()
	if err != nil {
		return nil, err
	}
	numrecs := int(numrecs32)
	if numrecs < 0 || numrecs > len(data) {
		return nil, fmt.Errorf("netcdf: implausible record count %d", numrecs)
	}

	f := &File{}

	tag, err := r.i32()
	if err != nil {
		return nil, err
	}
	ndims, err := r.i32()
	if err != nil {
		return nil, err
	}
	if tag == tagDimension {
		for i := int32(0); i < ndims; i++ {
			nm, err := r.name()
			if err != nil {
				return nil, err
			}
			l, err := r.i32()
			if err != nil {
				return nil, err
			}
			if l < 0 {
				return nil, fmt.Errorf("netcdf: dimension %q has negative length", nm)
			}
			f.Dims = append(f.Dims, Dim{Name: nm, Len: int(l)}) // Len 0 = record dim
		}
	} else if tag != 0 || ndims != 0 {
		return nil, fmt.Errorf("netcdf: bad dimension list tag 0x%x", tag)
	}
	recDim, err := f.recordDim()
	if err != nil {
		return nil, err
	}

	if f.Attrs, err = r.attrList(); err != nil {
		return nil, err
	}

	tag, err = r.i32()
	if err != nil {
		return nil, err
	}
	nvars, err := r.i32()
	if err != nil {
		return nil, err
	}
	if tag == 0 {
		if nvars != 0 {
			return nil, fmt.Errorf("netcdf: ABSENT var list with count %d", nvars)
		}
		return f, nil
	}
	if tag != tagVariable {
		return nil, fmt.Errorf("netcdf: bad variable list tag 0x%x", tag)
	}
	if int(nvars) < 0 || int(nvars)*28 > len(data) {
		return nil, fmt.Errorf("netcdf: implausible variable count %d", nvars)
	}

	type pendingVar struct {
		v     Var
		begin int
		vsize int
	}
	var pending []pendingVar
	for i := int32(0); i < nvars; i++ {
		nm, err := r.name()
		if err != nil {
			return nil, err
		}
		nd, err := r.i32()
		if err != nil {
			return nil, err
		}
		if nd < 0 || nd > 1024 {
			return nil, fmt.Errorf("netcdf: variable %q has implausible rank %d", nm, nd)
		}
		dims := make([]int, nd)
		for j := range dims {
			di, err := r.i32()
			if err != nil {
				return nil, err
			}
			if int(di) < 0 || int(di) >= len(f.Dims) {
				return nil, fmt.Errorf("netcdf: variable %q has bad dim id %d", nm, di)
			}
			dims[j] = int(di)
		}
		attrs, err := r.attrList()
		if err != nil {
			return nil, err
		}
		t, err := r.i32()
		if err != nil {
			return nil, err
		}
		typ := Type(t)
		if typ.Size() == 0 {
			return nil, fmt.Errorf("netcdf: variable %q has bad type %d", nm, t)
		}
		vsize, err := r.i32()
		if err != nil {
			return nil, err
		}
		begin, err := r.i32()
		if err != nil {
			return nil, err
		}
		pending = append(pending, pendingVar{
			v:     Var{Name: nm, Type: typ, Dims: dims, Attrs: attrs},
			begin: int(begin),
			vsize: int(vsize),
		})
	}

	// The record-block stride is the sum of all record variables' vsizes
	// (each vsize is the per-record slab size as written by Encode).
	recStride := 0
	for _, p := range pending {
		if rec, err := f.isRecordVar(&p.v, recDim); err == nil && rec {
			if p.vsize < 0 || p.vsize > len(data) {
				return nil, fmt.Errorf("netcdf: record variable %q has implausible vsize %d", p.v.Name, p.vsize)
			}
			recStride += p.vsize
		}
	}

	for _, p := range pending {
		v := p.v
		rec, err := f.isRecordVar(&v, recDim)
		if err != nil {
			return nil, err
		}
		if rec {
			rs, err := f.recSize(&v)
			if err != nil {
				return nil, err
			}
			if rs <= 0 || rs > len(data) || numrecs*rs > len(data) {
				return nil, fmt.Errorf("netcdf: record variable %q has implausible record size %d", v.Name, rs)
			}
			slab := rs * v.Type.Size()
			if !v.readRecords(data, p.begin, recStride, numrecs, rs, slab) {
				return nil, fmt.Errorf("netcdf: record variable %q data out of bounds", v.Name)
			}
			f.Vars = append(f.Vars, v)
			continue
		}
		n, err := f.elemCount(&v)
		if err != nil {
			return nil, err
		}
		// n is derived from untrusted dimension lengths: reject before
		// allocating if the claimed data cannot fit in the file (this
		// also catches products that overflowed to negative).
		if n < 0 || n > len(data) {
			return nil, fmt.Errorf("netcdf: variable %q has implausible element count %d", v.Name, n)
		}
		if p.begin < 0 || p.begin+n*v.Type.Size() > len(data) || p.begin+n*v.Type.Size() < 0 {
			return nil, fmt.Errorf("netcdf: variable %q data out of bounds", v.Name)
		}
		rr := &reader{data: data, off: p.begin}
		if v.Type == Char {
			v.Text = string(data[p.begin : p.begin+n])
		} else {
			v.Data = make([]float64, n)
			for j := range v.Data {
				val, err := rr.value(v.Type)
				if err != nil {
					return nil, err
				}
				v.Data[j] = val
			}
		}
		f.Vars = append(f.Vars, v)
	}
	return f, nil
}

// readRecords fills v's payload from numrecs interleaved record slabs
// starting at begin with the given stride; false on bounds violations.
func (v *Var) readRecords(data []byte, begin, stride, numrecs, recElems, slabBytes int) bool {
	if begin < 0 || stride < slabBytes || slabBytes < 0 {
		return false
	}
	if v.Type != Char {
		v.Data = make([]float64, 0, numrecs*recElems)
	}
	var text []byte
	for rec := 0; rec < numrecs; rec++ {
		off := begin + rec*stride
		if off < 0 || off+slabBytes > len(data) {
			return false
		}
		if v.Type == Char {
			text = append(text, data[off:off+recElems]...)
			continue
		}
		rr := &reader{data: data, off: off}
		for j := 0; j < recElems; j++ {
			val, err := rr.value(v.Type)
			if err != nil {
				return false
			}
			v.Data = append(v.Data, val)
		}
	}
	if v.Type == Char {
		v.Text = string(text)
	}
	return true
}
