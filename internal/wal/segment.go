package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	// recordHeader is length(4) + crc32c(4) + seq(8).
	recordHeader = 16
	// maxRecordBytes caps a single payload so a corrupt length field
	// cannot trigger an absurd allocation during recovery.
	maxRecordBytes = 1 << 30

	segmentSuffix  = ".wal"
	snapshotSuffix = ".snap"
)

// castagnoli is the CRC32C table (same polynomial as iSCSI, ext4, and
// every production WAL; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func segmentName(firstSeq uint64) string { return fmt.Sprintf("%016x%s", firstSeq, segmentSuffix) }
func snapshotName(lastSeq uint64) string { return fmt.Sprintf("%016x%s", lastSeq, snapshotSuffix) }
func parseSeqName(name, suffix string) (uint64, bool) {
	base := strings.TrimSuffix(name, suffix)
	if base == name || len(base) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(base, 16, 64)
	return seq, err == nil
}

// appendRecord frames (seq, payload) onto buf.
func appendRecord(buf []byte, seq uint64, payload []byte) []byte {
	var hdr [recordHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	crc := crc32.Update(0, castagnoli, hdr[8:16])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// EncodeFrame appends the on-disk/wire framing of (seq, payload) to dst
// and returns the extended slice. The bytes are identical to what the
// log writes into its segments, which is what lets the replication
// stream ship records verbatim in the WAL's own format.
func EncodeFrame(dst []byte, seq uint64, payload []byte) []byte {
	return appendRecord(dst, seq, payload)
}

// frameStatus classifies one attempted frame parse.
type frameStatus int

const (
	frameOK      frameStatus = iota
	frameShort               // not enough bytes for a complete frame
	frameCorrupt             // complete-length frame with a bad checksum
)

// parseFrame reads one framed record from the front of data. The
// returned n is the total frame size (header + payload) when status is
// frameOK. The payload slice aliases data — callers that retain it must
// copy. Shared by segment recovery, the SegmentReader, and the network
// StreamScanner so every consumer of the frame format agrees on what a
// valid record is.
func parseFrame(data []byte) (seq uint64, payload []byte, n int, status frameStatus) {
	if len(data) < recordHeader {
		return 0, nil, 0, frameShort
	}
	pl := int(binary.LittleEndian.Uint32(data[0:4]))
	if pl > maxRecordBytes {
		// An absurd length field cannot be a partial write of a sane
		// record; treat it as corruption, not a short read.
		return 0, nil, 0, frameCorrupt
	}
	if recordHeader+pl > len(data) {
		return 0, nil, 0, frameShort
	}
	want := binary.LittleEndian.Uint32(data[4:8])
	if crc32.Checksum(data[8:recordHeader+pl], castagnoli) != want {
		return 0, nil, 0, frameCorrupt
	}
	seq = binary.LittleEndian.Uint64(data[8:16])
	return seq, data[recordHeader : recordHeader+pl], recordHeader + pl, frameOK
}

// scanResult is one segment's recovery outcome.
type scanResult struct {
	records  []Record
	validLen int64 // byte offset of the first invalid record (== size when clean)
	torn     bool  // file ends in a torn/corrupt record
	// corrupt distinguishes mid-data damage from a torn write: a valid
	// record frame exists AFTER the invalid bytes, so what precedes it
	// cannot be an interrupted final write — truncating would discard
	// acknowledged records that are still intact on disk.
	corrupt bool
}

// scanSegment reads every valid record in the file. Sequence numbers
// are dense by construction (one record per staged sequence, in order),
// so after the segment's first record each successor must be exactly
// prev+1; any framing, checksum, or density violation marks the rest of
// the file torn (the caller decides truncate-vs-fail based on whether
// this is the final segment). Cross-segment continuity is the caller's
// job — the first record of a segment is unconstrained here, because
// truncating at a boundary mismatch would destroy data that a loud
// failure should protect.
func scanSegment(path string) (scanResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return scanResult{}, fmt.Errorf("wal: read segment %s: %w", path, err)
	}
	var res scanResult
	off := 0
	prevSeq := uint64(0)
	for {
		seq, p, n, status := parseFrame(data[off:])
		if status != frameOK {
			res.torn = off < len(data)
			break
		}
		if prevSeq != 0 && seq != prevSeq+1 {
			res.torn = true
			break
		}
		payload := make([]byte, len(p))
		copy(payload, p)
		res.records = append(res.records, Record{Seq: seq, Payload: payload})
		prevSeq = seq
		off += n
	}
	res.validLen = int64(off)
	if res.torn && hasValidFrameAfter(data, off+1, prevSeq) {
		res.corrupt = true
	}
	return res, nil
}

// hasValidFrameAfter reports whether any byte offset >= start parses as
// a CRC-valid record frame with a plausible (later) sequence number. A
// genuinely torn tail — a write the crash interrupted — has only
// garbage after the tear; finding an intact later frame means the
// invalid bytes are bit-rot sitting in front of acknowledged records,
// which recovery must refuse to truncate. A chance CRC match in random
// garbage (~2^-32 per offset) errs toward the loud failure, never
// toward data loss.
func hasValidFrameAfter(data []byte, start int, prevSeq uint64) bool {
	for off := start; off+recordHeader <= len(data); off++ {
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		if n > maxRecordBytes || off+recordHeader+n > len(data) {
			continue
		}
		seq := binary.LittleEndian.Uint64(data[off+8 : off+16])
		if seq <= prevSeq {
			continue
		}
		want := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if crc32.Checksum(data[off+8:off+recordHeader+n], castagnoli) == want {
			return true
		}
	}
	return false
}

// snapshotEntry is an on-disk snapshot candidate.
type snapshotEntry struct {
	seq  uint64
	path string
}

// scanDir lists segments (sorted by first sequence) and snapshots
// (sorted by sequence) under dir, ignoring everything else.
func scanDir(dir string) ([]segmentInfo, []snapshotEntry, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: scan %s: %w", dir, err)
	}
	var segs []segmentInfo
	var snaps []snapshotEntry
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSeqName(e.Name(), segmentSuffix); ok {
			info, err := e.Info()
			if err != nil {
				return nil, nil, fmt.Errorf("wal: stat %s: %w", e.Name(), err)
			}
			segs = append(segs, segmentInfo{firstSeq: seq, path: filepath.Join(dir, e.Name()), size: info.Size()})
			continue
		}
		if seq, ok := parseSeqName(e.Name(), snapshotSuffix); ok {
			snaps = append(snaps, snapshotEntry{seq: seq, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].seq < snaps[j].seq })
	return segs, snaps, nil
}

// syncDir fsyncs a directory so renames and creates within it are
// durable. Errors are swallowed: some filesystems reject directory
// fsync, and losing it only weakens crash-atomicity to what the
// filesystem journal already provides.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
