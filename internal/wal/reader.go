package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// ErrCompacted reports that the requested records are no longer on
// disk: compaction deleted the segments that held them, so a reader
// positioned before the snapshot horizon must restart from a snapshot.
var ErrCompacted = errors.New("wal: requested records compacted away")

// readerChunk is how many bytes SegmentReader pulls from a segment file
// per refill; large enough that catch-up streaming is not syscall-bound.
const readerChunk = 256 << 10

// SegmentReader iterates framed records straight off a log directory's
// segment files, starting strictly after a given sequence number. It is
// the raw-record counterpart to Open's replay-to-store recovery (the
// two share the same frame parser) and the engine under the replication
// stream: recovery consumes records as store mutations, replication
// ships the same frames over HTTP.
//
// Next returns records in dense sequence order. io.EOF means "caught up
// with the log as written so far" — the reader keeps its position, so a
// caller tailing a live log can wait for the next commit and call Next
// again. A reader positioned before the oldest on-disk record fails
// with ErrCompacted.
//
// Reading races appends: the reader must only be driven past a sequence
// number the writer has published as committed (Log.CommittedSeq /
// WaitCommitted). Within that bound, a partial frame at the tail of the
// active segment simply reads as io.EOF.
type SegmentReader struct {
	dir  string
	last uint64 // last sequence returned; Next returns last+1

	f        *os.File
	path     string
	firstSeq uint64 // segment name of the open file
	off      int64  // file offset of pending[0]
	pending  []byte // bytes read from f but not yet parsed
	parsed   int    // bytes of pending already consumed
}

// NewSegmentReader positions a reader over dir so that the first Next
// returns the record with sequence after+1. The directory is consulted
// lazily, so constructing a reader for an empty (or not yet rotated-to)
// position is cheap and valid.
func NewSegmentReader(dir string, after uint64) *SegmentReader {
	return &SegmentReader{dir: dir, last: after}
}

// LastSeq reports the sequence number of the last record returned (or
// the initial position when none has been).
func (r *SegmentReader) LastSeq() uint64 { return r.last }

// Next returns the next record. The payload is freshly allocated and
// safe to retain. io.EOF = no complete next record on disk yet (see
// type comment); ErrCompacted = the position predates the oldest
// segment; any other error is unrecoverable corruption or IO failure.
func (r *SegmentReader) Next() (Record, error) {
	for {
		if r.f == nil {
			if err := r.openAt(r.last + 1); err != nil {
				return Record{}, err
			}
		}
		seq, payload, n, status := parseFrame(r.pending[r.parsed:])
		switch status {
		case frameOK:
			r.parsed += n
			if seq <= r.last {
				continue // positioned mid-segment: skip already-consumed records
			}
			if seq != r.last+1 {
				return Record{}, fmt.Errorf("wal: segment %s: sequence gap: read %d, want %d", r.path, seq, r.last+1)
			}
			r.last = seq
			rec := Record{Seq: seq, Payload: append([]byte(nil), payload...)}
			return rec, nil
		case frameShort:
			grew, err := r.refill()
			if err != nil {
				return Record{}, err
			}
			if grew {
				continue
			}
			// No more bytes in this file. Either the writer rotated past
			// it (a younger segment starts at last+1) or this is the live
			// tail (io.EOF, position kept for a later retry).
			advanced, err := r.advance()
			if err != nil {
				return Record{}, err
			}
			if !advanced {
				return Record{}, io.EOF
			}
		case frameCorrupt:
			// In the final (active) segment this can only be bytes of an
			// in-flight batch the committed bound should have kept us away
			// from — surface it as corruption rather than spinning.
			return Record{}, fmt.Errorf("wal: segment %s: corrupt record at offset %d", r.path, r.off+int64(r.parsed))
		}
	}
}

// openAt scans the directory and opens the segment holding seq: the
// youngest segment whose first sequence is <= seq. A directory whose
// oldest segment starts after seq has compacted the position away.
func (r *SegmentReader) openAt(seq uint64) error {
	segs, _, err := scanDir(r.dir)
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		return io.EOF // nothing written yet; retryable
	}
	idx := -1
	for i := range segs {
		if segs[i].firstSeq <= seq {
			idx = i
		}
	}
	if idx < 0 {
		return fmt.Errorf("%w: want seq %d, oldest segment starts at %d", ErrCompacted, seq, segs[0].firstSeq)
	}
	return r.open(segs[idx])
}

// open switches the reader to the given segment.
func (r *SegmentReader) open(seg segmentInfo) error {
	if r.f != nil {
		_ = r.f.Close()
	}
	f, err := os.Open(seg.path)
	if err != nil {
		if os.IsNotExist(err) {
			// Compaction won the race between scanDir and Open.
			return fmt.Errorf("%w: segment %s removed", ErrCompacted, seg.path)
		}
		return fmt.Errorf("wal: open segment %s: %w", seg.path, err)
	}
	r.f = f
	r.path = seg.path
	r.firstSeq = seg.firstSeq
	r.off = 0
	r.pending = r.pending[:0]
	r.parsed = 0
	return nil
}

// refill compacts consumed bytes away and reads the next chunk from the
// current file, reporting whether any new bytes arrived.
func (r *SegmentReader) refill() (bool, error) {
	if r.parsed > 0 {
		r.off += int64(r.parsed)
		r.pending = r.pending[:copy(r.pending, r.pending[r.parsed:])]
		r.parsed = 0
	}
	have := len(r.pending)
	if cap(r.pending)-have < readerChunk {
		grown := make([]byte, have, have+readerChunk)
		copy(grown, r.pending)
		r.pending = grown
	}
	n, err := r.f.ReadAt(r.pending[have:have+readerChunk], r.off+int64(have))
	r.pending = r.pending[:have+n]
	if err != nil && err != io.EOF {
		return n > 0, fmt.Errorf("wal: read segment %s: %w", r.path, err)
	}
	return n > 0, nil
}

// advance moves to the segment starting at last+1 if rotation created
// one. By the rotation invariant a successor segment is named exactly
// lastWritten+1, so if a younger segment exists but none starts at
// last+1 the bytes in between were lost — corruption to fail loudly on.
func (r *SegmentReader) advance() (bool, error) {
	segs, _, err := scanDir(r.dir)
	if err != nil {
		return false, err
	}
	var younger bool
	for _, seg := range segs {
		if seg.firstSeq == r.last+1 && seg.path != r.path {
			return true, r.open(seg)
		}
		if seg.firstSeq > r.last+1 {
			younger = true
		}
	}
	if younger {
		return false, fmt.Errorf("wal: segment %s: no successor starting at seq %d but younger segments exist", r.path, r.last+1)
	}
	return false, nil
}

// Close releases the open segment file. The reader stays positionable:
// a later Next reopens at the saved sequence.
func (r *SegmentReader) Close() error {
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	r.pending = nil
	r.parsed = 0
	return err
}

// StreamScanner decodes WAL frames from a byte stream — the follower
// side of the replication protocol, where the frames arrive over HTTP
// instead of from a segment file. Checksums are verified frame by
// frame, so a corrupted transfer surfaces as an error, never as a bad
// record handed to the caller.
type StreamScanner struct {
	r   *bufio.Reader
	hdr [recordHeader]byte
}

// NewStreamScanner wraps rd for frame decoding.
func NewStreamScanner(rd io.Reader) *StreamScanner {
	return &StreamScanner{r: bufio.NewReaderSize(rd, 64<<10)}
}

// Buffered reports whether at least one byte of a further frame is
// already in memory — the follower uses this to group-commit its local
// journal writes exactly when the stream momentarily runs dry.
func (s *StreamScanner) Buffered() bool { return s.r.Buffered() > 0 }

// Next reads one frame. io.EOF at a clean end-of-stream;
// io.ErrUnexpectedEOF when the stream dies mid-frame.
func (s *StreamScanner) Next() (Record, error) {
	if _, err := io.ReadFull(s.r, s.hdr[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("wal: stream header: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(s.hdr[0:4]))
	if n > maxRecordBytes {
		return Record{}, fmt.Errorf("wal: stream record of %d bytes exceeds limit %d", n, maxRecordBytes)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(s.r, payload); err != nil {
		return Record{}, fmt.Errorf("wal: stream payload: %w", err)
	}
	crc := crc32.Update(0, castagnoli, s.hdr[8:16])
	crc = crc32.Update(crc, castagnoli, payload)
	if crc != binary.LittleEndian.Uint32(s.hdr[4:8]) {
		return Record{}, fmt.Errorf("wal: stream record checksum mismatch")
	}
	return Record{Seq: binary.LittleEndian.Uint64(s.hdr[8:16]), Payload: payload}, nil
}
