// Package wal is a segment-based append-only write-ahead log with
// group-commit batching, snapshot files, and crash recovery. It is the
// durability engine under provstore: every mutation is framed, checksummed,
// and written to the active segment before it is acknowledged, snapshots
// periodically capture the whole store state, and compaction deletes
// segments wholly covered by the latest snapshot so disk use stays
// bounded.
//
// Record framing (little-endian):
//
//	length(4) | crc32c(4) | seq(8) | payload
//
// where crc32c covers seq+payload. Segments are named %016x.wal after the
// sequence number of the first record they may contain; snapshots are
// %016x.snap after the last sequence number their payload includes.
//
// Durability semantics: Append (= Stage + Ticket.Commit) returns only
// after the record is written to the active segment and — when
// Options.Fsync is set — fsynced. Concurrent committers coalesce: the
// first one into the critical section writes and syncs every staged
// record in one batch (group commit), the rest just wait on the shared
// batch ticket.
package wal

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// Options configures a Log.
type Options struct {
	// Fsync makes every commit batch fsync the active segment before
	// acknowledging. Off, durability is bounded by the OS page cache
	// (process crashes lose nothing; power loss may).
	Fsync bool
	// SegmentBytes is the rotation threshold for the active segment.
	// Defaults to 4 MiB.
	SegmentBytes int64
	// FS supplies the segment files. Nil selects DefaultFS (the real
	// filesystem); tests inject a FaultFS to exercise the fail-stop
	// latch against write/fsync failures and slow disks.
	FS FS
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.FS == nil {
		o.FS = DefaultFS
	}
	return o
}

// Record is one recovered log entry.
type Record struct {
	Seq     uint64
	Payload []byte
}

// RecoveredState is what Open reconstructed from disk: the latest valid
// snapshot (if any) plus every durable record after it, in sequence
// order.
type RecoveredState struct {
	// SnapshotSeq is the sequence number the snapshot payload covers
	// (0 = no snapshot found).
	SnapshotSeq uint64
	// SnapshotPayload is the raw snapshot body, nil when SnapshotSeq is 0.
	SnapshotPayload []byte
	// Records are the tail records with Seq > SnapshotSeq.
	Records []Record
	// Repaired reports that a torn tail (partial final record from a
	// crash mid-write) was truncated away during recovery.
	Repaired bool
	// SuspectBitRot reports that CRC-valid record frames existed AFTER
	// the truncation point. A torn write can look like this too (pages
	// of one unacknowledged batch persisting out of order before fsync
	// returned), so recovery still repairs and proceeds — but if the
	// damage was in-place bit rot, the truncated frames were real
	// acknowledged records. Callers should log this loudly.
	SuspectBitRot bool
}

// LastSeq returns the highest sequence number recovered.
func (r *RecoveredState) LastSeq() uint64 {
	if n := len(r.Records); n > 0 {
		return r.Records[n-1].Seq
	}
	return r.SnapshotSeq
}

// batch is one group-commit unit: every record staged while it is
// current is made durable by a single leader write (+ fsync).
type batch struct {
	done chan struct{}
	err  error
}

// Stats is a point-in-time summary of the log, surfaced through
// provstore and the /stats endpoint.
type Stats struct {
	LastSeq         uint64 `json:"last_seq"`
	SnapshotSeq     uint64 `json:"snapshot_seq"`
	Segments        int    `json:"segments"`
	DiskBytes       int64  `json:"disk_bytes"`
	Appends         uint64 `json:"appends"`
	Commits         uint64 `json:"commits"`
	Syncs           uint64 `json:"syncs"`
	Snapshots       uint64 `json:"snapshots"`
	SegmentsRemoved uint64 `json:"segments_removed"`
	// QueueDepth and CommitLatencyUs snapshot the commit-queue gauge
	// (see Log.QueueDepth / Log.CommitLatency) for /stats.
	QueueDepth      int64 `json:"commit_queue_depth"`
	CommitLatencyUs int64 `json:"commit_latency_us"`
}

// segmentInfo is one on-disk segment. By the rotation invariant the
// first record of segment i+1 has sequence exactly firstSeq(i+1), so
// segment i holds records [firstSeq(i), firstSeq(i+1)-1].
type segmentInfo struct {
	firstSeq uint64
	path     string
	size     int64
}

// Log is the append side of the write-ahead log.
type Log struct {
	dir  string
	opts Options
	lock *os.File // flock on dir/LOCK, held for the log's lifetime

	// mu guards the staging state: callers serialize sequence
	// assignment and buffer encoding here, never any IO.
	mu      sync.Mutex
	pending []byte // encoded records awaiting the next commit batch
	spare   []byte // recycled pending buffer
	cur     *batch // ticket covering everything in pending
	nextSeq uint64
	closed  bool
	// failed latches the first IO error. A failed write can leave a
	// gap on disk that recovery would (rightly) truncate at, so once
	// any write or fsync fails the log refuses all further staging,
	// syncing, and snapshotting: nothing is acknowledged after the
	// point of failure, which keeps "recovery truncates at the first
	// invalid record" equivalent to "no acknowledged record is lost".
	failed error

	// ioMu serializes all file IO: commit batches, rotation,
	// snapshot writes, and compaction.
	ioMu        sync.Mutex
	f           File
	fSize       int64
	segs        []segmentInfo // sorted by firstSeq; last entry is active
	snapSeq     uint64        // latest durable snapshot
	lastWritten uint64        // highest seq written to a segment

	// Live-tail subscription: committed is the highest sequence whose
	// commit batch has fully reached the segment file (and been fsynced
	// when Options.Fsync is set) — the publication point replication
	// readers may stream up to. tailCh is created lazily by the first
	// waiter and closed+cleared on every advance, so any number of
	// waiters wake per commit while an unwatched log (no replication
	// tails — the common single-node case) commits without allocating a
	// wake channel per batch.
	committed atomic.Uint64
	tailMu    sync.Mutex
	tailCh    chan struct{} // nil = no waiters since the last advance
	tailDone  bool

	// compactFloor is the replication cursor honored by Compact: records
	// above it are retained even when a snapshot covers them, so a
	// connected-but-lagging follower's unstreamed history is not deleted
	// out from under it. MaxUint64 (the initial value) = no restriction.
	compactFloor atomic.Uint64

	// Commit-queue telemetry, read lock-free by admission control on
	// every shed decision. staged tracks the highest sequence handed out
	// by Stage, so staged-committed is the records waiting on a group
	// commit; commitNanos and batchRecs are EWMAs (alpha 1/8) of batch
	// write+fsync latency and records-per-batch, updated once per batch
	// under ioMu.
	staged      atomic.Uint64
	commitNanos atomic.Int64
	batchRecs   atomic.Int64

	// Durability histograms, always live (Observe is a few atomic
	// adds); RegisterObs exposes them for scraping.
	fsyncHist  *obs.Histogram // per-fsync latency, ns
	batchHist  *obs.Histogram // records per group-commit batch
	commitWait *obs.Histogram // per-request commit wait, ns; carries trace exemplars

	statsMu sync.Mutex
	appends uint64
	commits uint64
	syncs   uint64
	snaps   uint64
	removed uint64
}

// Open opens (or creates) the log directory, repairs a torn tail, and
// returns the log positioned for appending plus everything recovered
// from disk. Records already covered by the returned snapshot are not
// re-surfaced.
func Open(dir string, opts Options) (*Log, *RecoveredState, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: open %s: %w", dir, err)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, nil, err
	}
	ok := false
	defer func() {
		if !ok {
			unlockDir(lock)
		}
	}()
	segs, snaps, err := scanDir(dir)
	if err != nil {
		return nil, nil, err
	}

	rec := &RecoveredState{}
	// Newest structurally-valid snapshot wins; corrupt ones fall
	// through to the next-older candidate (or full log replay).
	for i := len(snaps) - 1; i >= 0; i-- {
		payload, seq, err := readSnapshot(snaps[i].path)
		if err != nil {
			continue
		}
		rec.SnapshotSeq = seq
		rec.SnapshotPayload = payload
		break
	}

	// Scan segments oldest-first. Within a segment records must be
	// dense (scanSegment enforces seq = prev+1); across segments the
	// first record must continue exactly where the previous one left
	// off, and the very first record overall must be covered by (or
	// adjacent to) the snapshot horizon. Any gap means a whole chunk
	// of acknowledged history is missing — that is corruption to fail
	// loudly on, never to silently skip. Records the snapshot already
	// covers (a crash can land between snapshot write and compaction)
	// are legitimate; they are simply not re-surfaced.
	lastScanned := uint64(0) // highest record seq seen across segments
	for i := range segs {
		final := i == len(segs)-1
		res, err := scanSegment(segs[i].path)
		if err != nil {
			return nil, nil, err
		}
		if len(res.records) > 0 {
			first := res.records[0].Seq
			if lastScanned == 0 {
				if first > rec.SnapshotSeq+1 {
					return nil, nil, fmt.Errorf("wal: gap: journal starts at seq %d but snapshot covers only <=%d", first, rec.SnapshotSeq)
				}
			} else if first != lastScanned+1 {
				return nil, nil, fmt.Errorf("wal: gap: segment %s starts at seq %d, previous segment ended at %d", segs[i].path, first, lastScanned)
			}
		}
		if res.torn {
			if !final {
				// A later segment exists, so this cannot be an
				// interrupted final write: fail loudly rather than
				// discard acknowledged records.
				return nil, nil, fmt.Errorf("wal: segment %s: corrupt record at offset %d (not the final segment)", segs[i].path, res.validLen)
			}
			if err := os.Truncate(segs[i].path, res.validLen); err != nil {
				return nil, nil, fmt.Errorf("wal: repair %s: %w", segs[i].path, err)
			}
			segs[i].size = res.validLen
			rec.Repaired = true
			// Intact frames after the tear: indistinguishable between
			// out-of-order writeback of an unacknowledged batch (common,
			// harmless) and bit rot ahead of acknowledged records
			// (rare, real loss). Refusing to boot after every power
			// loss is the worse trade, so repair — but flag it.
			rec.SuspectBitRot = res.corrupt
		}
		for _, r := range res.records {
			if r.Seq > rec.SnapshotSeq {
				rec.Records = append(rec.Records, r)
			}
			lastScanned = r.Seq
		}
	}
	lastSeq := rec.SnapshotSeq
	if lastScanned > lastSeq {
		lastSeq = lastScanned
	}

	l := &Log{
		dir:         dir,
		opts:        opts,
		lock:        lock,
		nextSeq:     lastSeq + 1,
		snapSeq:     rec.SnapshotSeq,
		lastWritten: lastSeq,
		segs:        segs,
		fsyncHist:   obs.NewDurationHistogram(),
		batchHist:   obs.NewSizeHistogram(),
		commitWait:  obs.NewDurationHistogram().EnableExemplars(),
	}
	l.committed.Store(lastSeq)
	l.staged.Store(lastSeq)
	l.compactFloor.Store(^uint64(0))
	if len(segs) == 0 {
		if err := l.createSegment(l.nextSeq); err != nil {
			return nil, nil, err
		}
	} else {
		active := &l.segs[len(l.segs)-1]
		f, err := opts.FS.OpenFile(active.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: open active segment: %w", err)
		}
		l.f = f
		l.fSize = active.size
	}
	if rec.Repaired {
		syncDir(dir)
	}
	ok = true
	return l, rec, nil
}

// createSegment makes %016x.wal the active segment. ioMu (or exclusive
// setup) must be held.
func (l *Log) createSegment(firstSeq uint64) error {
	path := filepath.Join(l.dir, segmentName(firstSeq))
	f, err := l.opts.FS.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	l.f = f
	l.fSize = 0
	l.segs = append(l.segs, segmentInfo{firstSeq: firstSeq, path: path})
	syncDir(l.dir)
	return nil
}

// Ticket is a staged record's claim on durability: Commit blocks until
// the record's batch has been written (and fsynced when configured).
type Ticket struct {
	l   *Log
	seq uint64
	b   *batch
}

// Seq is the sequence number assigned at Stage time.
func (t Ticket) Seq() uint64 { return t.seq }

// Stage assigns the next sequence number and buffers the framed record
// without doing any IO. Callers that need mutation order to match log
// order (provstore does) call Stage under their own write lock and
// Commit outside it, so the fsync wait never blocks other writers from
// staging — that is what lets commits batch.
func (l *Log) Stage(payload []byte) (Ticket, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return Ticket{}, ErrClosed
	}
	if l.failed != nil {
		err := l.failed
		l.mu.Unlock()
		return Ticket{}, err
	}
	if len(payload) > maxRecordBytes {
		// The reader rejects frames above maxRecordBytes as corruption,
		// so acknowledging one here would write an unrecoverable record.
		l.mu.Unlock()
		return Ticket{}, fmt.Errorf("wal: payload %d bytes exceeds record limit %d", len(payload), maxRecordBytes)
	}
	seq := l.nextSeq
	l.nextSeq++
	l.staged.Store(seq)
	if l.pending == nil && l.spare != nil {
		l.pending = l.spare[:0]
		l.spare = nil
	}
	l.pending = appendRecord(l.pending, seq, payload)
	if l.cur == nil {
		l.cur = &batch{done: make(chan struct{})}
	}
	b := l.cur
	l.mu.Unlock()
	l.statsMu.Lock()
	l.appends++
	l.statsMu.Unlock()
	return Ticket{l: l, seq: seq, b: b}, nil
}

// Commit makes the staged record durable. The first committer to reach
// the IO lock becomes the leader: it steals the entire pending buffer
// (its own record plus anything staged since), writes it in one syscall,
// fsyncs once, and wakes every follower waiting on the same batch.
func (t Ticket) Commit() error {
	l := t.l
	if l == nil {
		return errors.New("wal: zero ticket")
	}
	l.ioMu.Lock()
	select {
	case <-t.b.done:
		// A previous leader's batch already covered this record.
		l.ioMu.Unlock()
		return t.b.err
	default:
	}
	// Leader: this ticket's batch is still current (batches are only
	// retired under ioMu), so steal it along with the pending buffer.
	buf, top, b := l.steal()
	err := l.commitBuf(buf, top)
	b.err = err
	close(b.done)
	l.ioMu.Unlock()
	return err
}

// CommitCtx is Commit bounded by ctx: it returns ctx.Err() if the
// context ends before the record's batch reaches disk. The record
// itself is already sequenced — abandoning the wait cannot un-stage
// it — so the commit is handed to a background goroutine and still
// completes; only the caller stops burning a thread on the fsync wait.
// Like any timed-out write, the outcome is ambiguous to the caller:
// the record may or may not be durable. Contexts that cannot be
// canceled take the exact Commit fast path (no goroutine).
func (t Ticket) CommitCtx(ctx context.Context) error {
	if ctx == nil || ctx.Done() == nil {
		return t.Commit()
	}
	if t.l == nil {
		return errors.New("wal: zero ticket")
	}
	select {
	case <-t.b.done:
		return t.b.err
	default:
	}
	res := make(chan error, 1)
	go func() { res <- t.Commit() }()
	select {
	case err := <-res:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Append stages and commits in one call.
func (l *Log) Append(payload []byte) (uint64, error) {
	t, err := l.Stage(payload)
	if err != nil {
		return 0, err
	}
	return t.seq, t.Commit()
}

// steal detaches the pending buffer and its batch. ioMu must be held.
// top is the highest staged sequence number (== last record in buf).
func (l *Log) steal() (buf []byte, top uint64, b *batch) {
	l.mu.Lock()
	buf = l.pending
	l.pending = nil
	b = l.cur
	l.cur = nil
	top = l.nextSeq - 1
	l.mu.Unlock()
	return buf, top, b
}

// commitBuf writes one batch to the active segment, fsyncs per Options,
// and rotates when the segment crosses the size threshold. ioMu held.
func (l *Log) commitBuf(buf []byte, top uint64) error {
	// Fail-stop: a prior failed write already dropped records from the
	// buffer, so writing anything more would leave a sequence gap on
	// disk that recovery would truncate acknowledged records at.
	if err := l.failedErr(); err != nil {
		return err
	}
	if len(buf) == 0 {
		return nil
	}
	defer l.recycle(buf)
	recs := int64(top - l.lastWritten)
	start := time.Now()
	if _, err := l.f.Write(buf); err != nil {
		return l.setFailed(fmt.Errorf("wal: write: %w", err))
	}
	l.fSize += int64(len(buf))
	l.segs[len(l.segs)-1].size = l.fSize
	l.lastWritten = top
	if l.opts.Fsync {
		fsyncStart := time.Now()
		if err := l.f.Sync(); err != nil {
			return l.setFailed(fmt.Errorf("wal: fsync: %w", err))
		}
		l.fsyncHist.ObserveSince(fsyncStart)
	}
	l.batchHist.Observe(recs)
	l.observeCommit(time.Since(start), recs)
	l.statsMu.Lock()
	l.commits++
	if l.opts.Fsync {
		l.syncs++
	}
	l.statsMu.Unlock()
	// Publish only after the batch is as durable as an acknowledgment:
	// a follower must never hold records a crashed primary would not
	// recover, or the two histories diverge on restart.
	l.advanceCommitted(top)
	if l.fSize >= l.opts.SegmentBytes {
		if err := l.rotate(top + 1); err != nil {
			return l.setFailed(err)
		}
	}
	return nil
}

// observeCommit folds one batch's write+fsync latency and record count
// into the EWMAs behind EstimateCommitWait. Single writer (ioMu held),
// so plain load/store is race-free against the lock-free readers.
func (l *Log) observeCommit(d time.Duration, recs int64) {
	if prev := l.commitNanos.Load(); prev == 0 {
		l.commitNanos.Store(int64(d))
	} else {
		l.commitNanos.Store(prev + (int64(d)-prev)/8)
	}
	if recs < 1 {
		recs = 1
	}
	if prev := l.batchRecs.Load(); prev == 0 {
		l.batchRecs.Store(recs)
	} else {
		l.batchRecs.Store(prev + (recs-prev)/8)
	}
}

// ObserveCommitWait folds one request's measured commit wait into the
// per-request commit-wait histogram, attributing the trace ID as the
// affected bucket's exemplar. The store calls this around
// Ticket.CommitCtx — the wait is per request, unlike the per-batch
// fsync and batch-size histograms observed by the commit leader.
func (l *Log) ObserveCommitWait(d time.Duration, traceID string) {
	l.commitWait.ObserveDurationExemplar(d, traceID)
}

// RegisterObs exposes the log's durability instruments on reg: fsync
// latency and group-commit batch-size histograms, the live
// commit-queue depth, and the operation counters behind Stats.
// Nil-safe on reg.
func (l *Log) RegisterObs(reg *obs.Registry) {
	reg.RegisterHistogram("yprov_wal_fsync_seconds",
		"Latency of WAL fsync calls on the group-commit path.", nil, l.fsyncHist)
	reg.RegisterHistogram("yprov_wal_group_commit_records",
		"Records per WAL group-commit batch.", nil, l.batchHist)
	reg.RegisterHistogram("yprov_wal_commit_wait_seconds",
		"Time one request waits for its group commit, trace-exemplared.", nil, l.commitWait)
	reg.RegisterGaugeFunc("yprov_wal_commit_queue_depth",
		"Staged records whose group commit has not yet reached disk.", nil,
		func() float64 { return float64(l.QueueDepth()) })
	reg.RegisterGaugeFunc("yprov_wal_commit_latency_seconds",
		"Smoothed write+fsync latency of recent commit batches.", nil,
		func() float64 { return l.CommitLatency().Seconds() })
	reg.RegisterGaugeFunc("yprov_wal_committed_seq",
		"Highest sequence durably committed to the journal.", nil,
		func() float64 { return float64(l.CommittedSeq()) })
	counter := func(name, help string, v *uint64) {
		reg.RegisterCounterFunc(name, help, nil, func() float64 {
			l.statsMu.Lock()
			defer l.statsMu.Unlock()
			return float64(*v)
		})
	}
	counter("yprov_wal_appends_total", "Records staged to the WAL.", &l.appends)
	counter("yprov_wal_commits_total", "Group-commit batches written.", &l.commits)
	counter("yprov_wal_syncs_total", "fsync calls issued by group commit.", &l.syncs)
	counter("yprov_wal_snapshots_total", "Snapshots written.", &l.snaps)
	counter("yprov_wal_segments_removed_total", "Segments deleted by compaction.", &l.removed)
}

// QueueDepth reports the number of staged records whose group commit
// has not yet reached disk — the WAL's commit-queue depth. Lock-free;
// admission control reads it on every write admission decision.
func (l *Log) QueueDepth() int64 {
	d := int64(l.staged.Load()) - int64(l.committed.Load())
	if d < 0 {
		return 0
	}
	return d
}

// CommitLatency reports the smoothed write+fsync latency of recent
// commit batches (0 until the first batch lands).
func (l *Log) CommitLatency() time.Duration {
	return time.Duration(l.commitNanos.Load())
}

// EstimateCommitWait estimates how long a record staged right now would
// wait for durability: queue depth divided by the smoothed batch size,
// times the smoothed batch latency. It is a shedding signal, not a
// promise — group commit absorbs bursts, so the estimate is pessimistic
// exactly when the queue is deep, which is when admission control wants
// pessimism.
func (l *Log) EstimateCommitWait() time.Duration {
	depth := l.QueueDepth()
	if depth == 0 {
		return 0
	}
	lat := l.commitNanos.Load()
	if lat == 0 {
		return 0
	}
	recs := l.batchRecs.Load()
	if recs < 1 {
		recs = 1
	}
	batches := (depth + recs - 1) / recs
	return time.Duration(batches * lat)
}

// advanceCommitted raises the committed watermark and wakes every
// WaitCommitted subscriber. The watermark is published before the wake
// channel is consumed, so a woken (or newly arriving) waiter always
// observes the advance. With no subscribers the advance is a single
// atomic store plus a mutex round trip — no per-commit allocation.
func (l *Log) advanceCommitted(seq uint64) {
	if seq <= l.committed.Load() {
		return
	}
	l.committed.Store(seq)
	l.tailMu.Lock()
	ch := l.tailCh
	l.tailCh = nil
	l.tailMu.Unlock()
	if ch != nil {
		close(ch)
	}
}

// CommittedSeq reports the highest sequence number that is safe to
// stream to replication readers (see the committed field).
func (l *Log) CommittedSeq() uint64 { return l.committed.Load() }

// NextSeq reports the sequence number the next Stage will assign. A
// follower checks it BEFORE staging a replicated record, so a cursor
// mismatch is rejected while the log is still untouched.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// SetCompactFloor installs the replication cursor: Compact keeps every
// record with sequence > seq on disk regardless of snapshot coverage,
// so followers that have only streamed up to seq can still catch up
// incrementally. Pass MaxUint64 to lift the restriction (no followers).
func (l *Log) SetCompactFloor(seq uint64) { l.compactFloor.Store(seq) }

// SnapshotSeq reports the latest durable snapshot horizon.
func (l *Log) SnapshotSeq() uint64 {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	return l.snapSeq
}

// WaitCommitted blocks until the committed watermark exceeds after, the
// log closes, or cancel fires. ok is false when no further progress
// will be observable (close/cancel).
func (l *Log) WaitCommitted(after uint64, cancel <-chan struct{}) (seq uint64, ok bool) {
	for {
		l.tailMu.Lock()
		if l.tailCh == nil && !l.tailDone {
			l.tailCh = make(chan struct{})
		}
		ch := l.tailCh
		done := l.tailDone
		l.tailMu.Unlock()
		// Re-check only after the wake channel is registered: an advance
		// that lands in between will close the captured channel, so the
		// wakeup cannot be lost.
		if cur := l.committed.Load(); cur > after {
			return cur, true
		}
		if done {
			return l.committed.Load(), false
		}
		select {
		case <-ch:
		case <-cancel:
			return l.committed.Load(), false
		}
	}
}

// setFailed latches the first IO error; later callers see it from
// Stage/Sync/WriteSnapshot.
func (l *Log) setFailed(err error) error {
	l.mu.Lock()
	if l.failed == nil {
		l.failed = err
	}
	l.mu.Unlock()
	return err
}

// failedErr returns the latched IO error, if any.
func (l *Log) failedErr() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// Failed reports the latched fail-stop error (nil while healthy). Once
// non-nil the log acknowledges nothing further; health endpoints
// surface this so operators see a latched primary, not silent 503s.
func (l *Log) Failed() error { return l.failedErr() }

// maxRecycledBuf caps the batch buffer kept for reuse: one oversized
// record must not pin its peak allocation for the log's lifetime.
const maxRecycledBuf = 1 << 20

// recycle hands the written buffer back to the staging side so steady
// load reuses one allocation per in-flight batch.
func (l *Log) recycle(buf []byte) {
	if cap(buf) > maxRecycledBuf {
		return
	}
	l.mu.Lock()
	if l.spare == nil {
		l.spare = buf[:0]
	}
	l.mu.Unlock()
}

// rotate finalizes the active segment and opens a fresh one whose name
// is exactly lastWritten+1, preserving the compaction invariant. ioMu
// must be held, firstSeq must be lastWritten+1.
func (l *Log) rotate(firstSeq uint64) error {
	if err := l.f.Sync(); err != nil { // a finished segment is always durable
		return fmt.Errorf("wal: rotate fsync: %w", err)
	}
	l.statsMu.Lock()
	l.syncs++
	l.statsMu.Unlock()
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: rotate close: %w", err)
	}
	return l.createSegment(firstSeq)
}

// Sync flushes any staged-but-uncommitted records and fsyncs the active
// segment regardless of Options.Fsync.
func (l *Log) Sync() error {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	return l.flushAndSync()
}

// flushAndSync drains pending and forces an fsync. ioMu held.
func (l *Log) flushAndSync() error {
	buf, top, b := l.steal()
	err := l.commitBuf(buf, top)
	if err == nil {
		err = l.failedErr() // empty flushes must still respect fail-stop
	}
	if err == nil && l.f != nil {
		if serr := l.f.Sync(); serr != nil {
			err = l.setFailed(fmt.Errorf("wal: fsync: %w", serr))
		} else {
			l.statsMu.Lock()
			l.syncs++
			l.statsMu.Unlock()
		}
	}
	if b != nil {
		b.err = err
		close(b.done)
	}
	return err
}

// Close flushes pending records, fsyncs, and closes the active segment.
// Staging after Close returns ErrClosed; in-flight Commits are completed
// by the close-time flush.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.closed = true
	l.mu.Unlock()

	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	err := l.flushAndSync()
	if cerr := l.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: close: %w", cerr)
	}
	// Wake replication tails so streams end instead of waiting forever.
	l.tailMu.Lock()
	if !l.tailDone {
		l.tailDone = true
		if l.tailCh != nil {
			close(l.tailCh)
			l.tailCh = nil
		}
	}
	l.tailMu.Unlock()
	unlockDir(l.lock)
	return err
}

// LatestSnapshot returns the newest structurally-valid snapshot on
// disk (payload, covered sequence). ok is false when none exists.
func (l *Log) LatestSnapshot() (payload []byte, seq uint64, ok bool, err error) {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	_, snaps, err := scanDir(l.dir)
	if err != nil {
		return nil, 0, false, err
	}
	for i := len(snaps) - 1; i >= 0; i-- {
		payload, seq, err := readSnapshot(snaps[i].path)
		if err != nil {
			continue
		}
		return payload, seq, true, nil
	}
	return nil, 0, false, nil
}

// LagBytes estimates the on-disk bytes of records with sequence > from:
// full sizes for segments entirely after from, a proportional share of
// the segment containing it. Replication surfaces this as a follower's
// byte lag — an estimate at sub-segment granularity, exact above it.
func (l *Log) LagBytes(from uint64) int64 {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	if from >= l.lastWritten {
		return 0
	}
	var lag int64
	for i, seg := range l.segs {
		// Records in seg i span [firstSeq(i), lastOf(i)] where lastOf is
		// firstSeq(i+1)-1 for sealed segments and lastWritten for the
		// active one.
		lastOf := l.lastWritten
		if i+1 < len(l.segs) {
			lastOf = l.segs[i+1].firstSeq - 1
		}
		switch {
		case lastOf <= from:
			continue
		case seg.firstSeq > from:
			lag += seg.size
		default:
			span := lastOf - seg.firstSeq + 1
			behind := lastOf - from
			lag += seg.size * int64(behind) / int64(span)
		}
	}
	return lag
}

// HasState reports whether dir already holds any WAL segments or
// snapshots — i.e. whether opening it would recover history rather
// than start fresh. Used by replication bootstrap to decide between
// resuming from local state and fetching the primary's snapshot.
func HasState(dir string) (bool, error) {
	if _, err := os.Stat(dir); os.IsNotExist(err) {
		return false, nil
	}
	segs, snaps, err := scanDir(dir)
	if err != nil {
		return false, err
	}
	return len(segs) > 0 || len(snaps) > 0, nil
}

// Stats reports the current log shape and activity counters.
func (l *Log) Stats() Stats {
	l.ioMu.Lock()
	var disk int64
	for _, s := range l.segs {
		disk += s.size
	}
	segs := len(l.segs)
	snapSeq := l.snapSeq
	last := l.lastWritten
	l.ioMu.Unlock()

	l.statsMu.Lock()
	defer l.statsMu.Unlock()
	return Stats{
		LastSeq:         last,
		SnapshotSeq:     snapSeq,
		Segments:        segs,
		DiskBytes:       disk,
		Appends:         l.appends,
		Commits:         l.commits,
		Syncs:           l.syncs,
		Snapshots:       l.snaps,
		SegmentsRemoved: l.removed,
		QueueDepth:      l.QueueDepth(),
		CommitLatencyUs: l.commitNanos.Load() / int64(time.Microsecond),
	}
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }
