package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"testing"
)

// drain reads records until io.EOF, failing the test on any other error.
func drain(t *testing.T, r *SegmentReader) []Record {
	t.Helper()
	var out []Record
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, rec)
	}
}

func appendN(t *testing.T, l *Log, n int, start int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("payload-%04d", start+i))); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSegmentReaderFromZero(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 10, 0)

	r := NewSegmentReader(dir, 0)
	defer r.Close()
	recs := drain(t, r)
	if len(recs) != 10 {
		t.Fatalf("read %d records, want 10", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, rec.Seq)
		}
		if want := fmt.Sprintf("payload-%04d", i); string(rec.Payload) != want {
			t.Fatalf("record %d payload = %q, want %q", i, rec.Payload, want)
		}
	}
}

func TestSegmentReaderFromMidLog(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 20, 0)

	r := NewSegmentReader(dir, 13)
	defer r.Close()
	recs := drain(t, r)
	if len(recs) != 7 {
		t.Fatalf("read %d records, want 7", len(recs))
	}
	if recs[0].Seq != 14 || recs[6].Seq != 20 {
		t.Fatalf("got seq range [%d, %d], want [14, 20]", recs[0].Seq, recs[6].Seq)
	}
}

func TestSegmentReaderAcrossRotatedSegments(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record rotates.
	l, _, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 12, 0)
	if st := l.Stats(); st.Segments < 3 {
		t.Fatalf("expected multiple segments, got %d", st.Segments)
	}

	r := NewSegmentReader(dir, 0)
	defer r.Close()
	recs := drain(t, r)
	if len(recs) != 12 {
		t.Fatalf("read %d records across segments, want 12", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, rec.Seq)
		}
	}
}

func TestSegmentReaderTailsLiveAppends(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 3, 0)

	r := NewSegmentReader(dir, 0)
	defer r.Close()
	if got := len(drain(t, r)); got != 3 {
		t.Fatalf("first drain read %d, want 3", got)
	}
	// The reader keeps its position across io.EOF: new appends surface
	// on the next call, the tailing contract replication relies on.
	appendN(t, l, 2, 3)
	more := drain(t, r)
	if len(more) != 2 || more[0].Seq != 4 || more[1].Seq != 5 {
		t.Fatalf("tail drain = %+v, want seqs 4,5", more)
	}
}

func TestSegmentReaderTailsAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 2, 0)

	r := NewSegmentReader(dir, 0)
	defer r.Close()
	drain(t, r)
	appendN(t, l, 6, 2) // rotates at least once past the reader's segment
	recs := drain(t, r)
	if len(recs) != 6 || recs[len(recs)-1].Seq != 8 {
		t.Fatalf("read %d records ending at %d, want 6 ending at 8", len(recs), recs[len(recs)-1].Seq)
	}
}

func TestSegmentReaderCompactedPosition(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 10, 0)
	if err := l.WriteSnapshot(10, []byte("snap")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Compact(); err != nil {
		t.Fatal(err)
	}

	r := NewSegmentReader(dir, 0)
	defer r.Close()
	if _, err := r.Next(); !errors.Is(err, ErrCompacted) {
		t.Fatalf("Next from compacted position = %v, want ErrCompacted", err)
	}
}

func TestSegmentReaderCompactFloorKeepsHistory(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 10, 0)
	// A follower acked through seq 4: compaction must keep 5..10 even
	// though the snapshot covers everything.
	l.SetCompactFloor(4)
	if err := l.WriteSnapshot(10, []byte("snap")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Compact(); err != nil {
		t.Fatal(err)
	}

	r := NewSegmentReader(dir, 4)
	defer r.Close()
	recs := drain(t, r)
	if len(recs) != 6 || recs[0].Seq != 5 {
		t.Fatalf("post-compaction read = %d records from seq %d, want 6 from 5", len(recs), recs[0].Seq)
	}
}

func TestSegmentReaderStopsAtTornTail(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 5, 0)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// A torn record (incomplete header+payload) must read as "no more
	// data", not as an error: on a live log these bytes are an in-flight
	// batch the committed bound keeps readers away from.
	segs, _, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(segs[len(segs)-1].path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x20, 0, 0, 0, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r := NewSegmentReader(dir, 0)
	defer r.Close()
	if got := len(drain(t, r)); got != 5 {
		t.Fatalf("read %d records, want 5 (torn tail ignored)", got)
	}
}

func TestStreamScannerRoundTrip(t *testing.T) {
	var wire []byte
	for i := 1; i <= 5; i++ {
		wire = EncodeFrame(wire, uint64(i), []byte(fmt.Sprintf("rec-%d", i)))
	}
	sc := NewStreamScanner(bytes.NewReader(wire))
	for i := 1; i <= 5; i++ {
		rec, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if rec.Seq != uint64(i) || string(rec.Payload) != fmt.Sprintf("rec-%d", i) {
			t.Fatalf("frame %d = (%d, %q)", i, rec.Seq, rec.Payload)
		}
	}
	if _, err := sc.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("end of stream = %v, want io.EOF", err)
	}
}

func TestStreamScannerRejectsCorruptFrame(t *testing.T) {
	wire := EncodeFrame(nil, 1, []byte("good"))
	wire[len(wire)-1] ^= 0xFF // flip a payload bit
	sc := NewStreamScanner(bytes.NewReader(wire))
	if _, err := sc.Next(); err == nil {
		t.Fatal("corrupt frame accepted")
	}
}

func TestStreamScannerTruncatedFrame(t *testing.T) {
	wire := EncodeFrame(nil, 1, []byte("good record payload"))
	sc := NewStreamScanner(bytes.NewReader(wire[:len(wire)-4]))
	if _, err := sc.Next(); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("truncated frame = %v, want a mid-frame error", err)
	}
}
