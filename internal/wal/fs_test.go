package wal

import (
	"context"
	"errors"
	"testing"
	"time"
)

// A write fault must latch fail-stop: the failing append errors, and
// every subsequent stage is refused with the same latched error.
func TestFaultFSWriteErrorLatches(t *testing.T) {
	ffs := NewFaultFS(nil)
	l, _, err := Open(t.TempDir(), Options{Fsync: true, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]byte("ok")); err != nil {
		t.Fatalf("append before fault: %v", err)
	}
	injected := errors.New("injected: device error")
	ffs.FailWrites(0, injected)
	if _, err := l.Append([]byte("doomed")); !errors.Is(err, injected) {
		t.Fatalf("append during fault: got %v, want %v", err, injected)
	}
	if err := l.Failed(); !errors.Is(err, injected) {
		t.Fatalf("Failed() = %v, want latched %v", err, injected)
	}
	ffs.Clear()
	if _, err := l.Stage([]byte("after")); err == nil {
		t.Fatal("stage after latch succeeded; fail-stop not latched")
	}
}

// A failed fsync must latch too — the record bytes may be in the page
// cache but were never acknowledged durable.
func TestFaultFSSyncErrorLatches(t *testing.T) {
	ffs := NewFaultFS(nil)
	l, _, err := Open(t.TempDir(), Options{Fsync: true, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	injected := errors.New("injected: fsync EIO")
	ffs.FailSyncs(0, injected)
	if _, err := l.Append([]byte("doomed")); !errors.Is(err, injected) {
		t.Fatalf("append during sync fault: got %v, want %v", err, injected)
	}
	if l.Failed() == nil {
		t.Fatal("fsync error did not latch fail-stop")
	}
}

// A short write leaves a torn record that recovery must repair, and
// nothing acknowledged before the fault may be lost.
func TestFaultFSShortWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	l, _, err := Open(dir, Options{Fsync: true, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	const acked = 5
	for i := 0; i < acked; i++ {
		if _, err := l.Append([]byte{byte('a' + i)}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	ffs.ShortWrites(0, errors.New("injected: ENOSPC"))
	if _, err := l.Append([]byte("torn-record-payload")); err == nil {
		t.Fatal("short write did not surface an error")
	}
	_ = l.Close()

	l2, rec, err := Open(dir, Options{Fsync: true})
	if err != nil {
		t.Fatalf("reopen after short write: %v", err)
	}
	defer l2.Close()
	if !rec.Repaired {
		t.Error("torn tail was not repaired")
	}
	if got := rec.LastSeq(); got != acked {
		t.Fatalf("recovered through seq %d, want %d (acked)", got, acked)
	}
}

func TestQueueDepthAndEstimate(t *testing.T) {
	l, _, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if d := l.QueueDepth(); d != 0 {
		t.Fatalf("empty log queue depth = %d", d)
	}
	t1, err := l.Stage([]byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := l.Stage([]byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	if d := l.QueueDepth(); d != 2 {
		t.Fatalf("queue depth with 2 staged = %d", d)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if d := l.QueueDepth(); d != 0 {
		t.Fatalf("queue depth after commit = %d", d)
	}
	if l.CommitLatency() <= 0 {
		t.Error("commit latency EWMA not observed")
	}
	if st := l.Stats(); st.QueueDepth != 0 {
		t.Errorf("stats queue depth = %d", st.QueueDepth)
	}
}

func TestCommitCtx(t *testing.T) {
	ffs := NewFaultFS(nil)
	l, _, err := Open(t.TempDir(), Options{Fsync: true, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// Non-cancelable context: identical to Commit.
	tk, err := l.Stage([]byte("fast"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.CommitCtx(context.Background()); err != nil {
		t.Fatalf("CommitCtx(Background): %v", err)
	}

	// Expired deadline against a stalled disk: the caller gets the
	// context error promptly while the background commit proceeds.
	ffs.SlowSyncs(200 * time.Millisecond)
	tk2, err := l.Stage([]byte("slow"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = tk2.CommitCtx(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("CommitCtx under slow fsync: got %v, want deadline exceeded", err)
	}
	if waited := time.Since(start); waited > 150*time.Millisecond {
		t.Fatalf("CommitCtx waited %v past its deadline", waited)
	}
	// The abandoned record still becomes durable.
	deadline := time.Now().Add(2 * time.Second)
	for l.CommittedSeq() < tk2.Seq() {
		if time.Now().After(deadline) {
			t.Fatal("abandoned commit never reached disk")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
