package wal

import (
	"io"
	"os"
	"sync"
	"time"
)

// File is the slice of *os.File the log needs from its active segment:
// appends, durability barriers, and close on rotation. Keeping the
// surface this small is what makes fault injection cheap — a fake only
// has to misbehave in three ways.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS abstracts segment-file creation so tests can inject IO failures
// (disk full, dying device, slow fsync) into the exact code paths a
// real disk would fail, instead of poking package-private failpoints.
// Only the active-segment write path goes through FS; recovery reads
// and snapshot files keep using the os package directly, since the
// fail-stop latch this seam exists to exercise lives on the write side.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
}

// osFS is the production FS: a pass-through to the os package.
type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// DefaultFS is the FS used when Options.FS is nil.
var DefaultFS FS = osFS{}

// FaultFS wraps an FS and injects faults into the files it opens:
// failed writes, short writes, failed fsyncs, and slow fsyncs. Faults
// arm after a configurable number of successful operations, so a test
// can let a store write real durable records and then yank the disk at
// a chosen point. All methods are safe for concurrent use; faults apply
// to every file opened through this FS, armed or re-armed at any time.
//
// The zero value is not usable; construct with NewFaultFS.
type FaultFS struct {
	inner FS

	mu         sync.Mutex
	writesLeft int // successful writes before the write fault fires; -1 = never
	writeErr   error
	shortWrite bool // deliver half the buffer with the error, like ENOSPC mid-write
	syncsLeft  int  // successful syncs before the sync fault fires; -1 = never
	syncErr    error
	syncDelay  time.Duration // injected before every sync (slow disk)
	writes     int           // total write calls observed
	syncs      int           // total sync calls observed
}

// NewFaultFS returns a FaultFS over inner (nil = DefaultFS) with no
// faults armed.
func NewFaultFS(inner FS) *FaultFS {
	if inner == nil {
		inner = DefaultFS
	}
	return &FaultFS{inner: inner, writesLeft: -1, syncsLeft: -1}
}

// FailWrites arms the write fault: after `after` more successful
// writes, every write fails with err.
func (f *FaultFS) FailWrites(after int, err error) {
	f.mu.Lock()
	f.writesLeft = after
	f.writeErr = err
	f.shortWrite = false
	f.mu.Unlock()
}

// ShortWrites arms a short-write fault: after `after` more successful
// writes, each write delivers only half its buffer to the underlying
// file and returns err — the shape of a disk filling up mid-record.
func (f *FaultFS) ShortWrites(after int, err error) {
	f.mu.Lock()
	f.writesLeft = after
	f.writeErr = err
	f.shortWrite = true
	f.mu.Unlock()
}

// FailSyncs arms the fsync fault: after `after` more successful syncs,
// every sync fails with err.
func (f *FaultFS) FailSyncs(after int, err error) {
	f.mu.Lock()
	f.syncsLeft = after
	f.syncErr = err
	f.mu.Unlock()
}

// SlowSyncs injects d of latency before every sync (0 disables). A
// slow fsync is the canonical way a healthy-looking disk stalls the
// group-commit queue, which is what admission control sheds on.
func (f *FaultFS) SlowSyncs(d time.Duration) {
	f.mu.Lock()
	f.syncDelay = d
	f.mu.Unlock()
}

// Clear disarms every fault (counters are kept).
func (f *FaultFS) Clear() {
	f.mu.Lock()
	f.writesLeft = -1
	f.writeErr = nil
	f.shortWrite = false
	f.syncsLeft = -1
	f.syncErr = nil
	f.syncDelay = 0
	f.mu.Unlock()
}

// Counts reports the total write and sync calls observed across all
// files opened through this FS.
func (f *FaultFS) Counts() (writes, syncs int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes, f.syncs
}

// OpenFile opens through the inner FS and wraps the file with the
// fault hooks.
func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

// writeDecision consults and advances the write-fault state.
func (f *FaultFS) writeDecision() (fail, short bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writes++
	if f.writesLeft < 0 {
		return false, false, nil
	}
	if f.writesLeft > 0 {
		f.writesLeft--
		return false, false, nil
	}
	return true, f.shortWrite, f.writeErr
}

// syncDecision consults and advances the sync-fault state.
func (f *FaultFS) syncDecision() (delay time.Duration, fail bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncs++
	delay = f.syncDelay
	if f.syncsLeft < 0 {
		return delay, false, nil
	}
	if f.syncsLeft > 0 {
		f.syncsLeft--
		return delay, false, nil
	}
	return delay, true, f.syncErr
}

// faultFile applies the parent FaultFS's armed faults to one file.
type faultFile struct {
	fs *FaultFS
	f  File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	fail, short, err := ff.fs.writeDecision()
	if !fail {
		return ff.f.Write(p)
	}
	if short && len(p) > 0 {
		// Deliver a truncated prefix so the segment really holds a torn
		// record, exactly what recovery's tail repair must handle.
		n, werr := ff.f.Write(p[:len(p)/2])
		if werr != nil {
			return n, werr
		}
		return n, err
	}
	return 0, err
}

func (ff *faultFile) Sync() error {
	delay, fail, err := ff.fs.syncDecision()
	if delay > 0 {
		time.Sleep(delay)
	}
	if fail {
		return err
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error { return ff.f.Close() }
