package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestTornTailEveryByteOffset is the core crash-safety property: a log
// whose final segment is cut at ANY byte offset must recover exactly
// the longest prefix of whole records, repair the file, and accept new
// appends afterwards — never fail, never resurrect a partial record.
func TestTornTailEveryByteOffset(t *testing.T) {
	master := t.TempDir()
	l, _ := mustOpen(t, master, Options{Fsync: true})
	const n = 12
	recSizes := make([]int64, n) // framed size of each record
	for i := 0; i < n; i++ {
		payload := []byte(fmt.Sprintf("payload-%02d-%s", i, string(make([]byte, i))))
		recSizes[i] = int64(recordHeader + len(payload))
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	segs, _, err := scanDir(master)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segs=%d err=%v", len(segs), err)
	}
	full, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}

	// wholeRecordsAt(k) = how many records fit entirely in the first k bytes.
	wholeAt := func(k int64) int {
		var off int64
		count := 0
		for _, sz := range recSizes {
			if off+sz <= k {
				off += sz
				count++
			} else {
				break
			}
		}
		return count
	}

	for cut := int64(0); cut <= int64(len(full)); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(segs[0].path)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: open failed: %v", cut, err)
		}
		want := wholeAt(cut)
		if len(rec.Records) != want {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, len(rec.Records), want)
		}
		wantRepair := wholeRecordBoundary(recSizes, cut) != cut
		if rec.Repaired != wantRepair {
			t.Fatalf("cut=%d: repaired=%v, want %v", cut, rec.Repaired, wantRepair)
		}
		// The log must be appendable after repair and a further reopen
		// must see old prefix + new record.
		seq, err := l2.Append([]byte("post-crash"))
		if err != nil {
			t.Fatalf("cut=%d: append after repair: %v", cut, err)
		}
		if seq != uint64(want+1) {
			t.Fatalf("cut=%d: post-repair seq=%d, want %d", cut, seq, want+1)
		}
		l2.Close()
		_, rec2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: second open: %v", cut, err)
		}
		if len(rec2.Records) != want+1 || string(rec2.Records[want].Payload) != "post-crash" {
			t.Fatalf("cut=%d: second recovery got %d records", cut, len(rec2.Records))
		}
	}
}

// wholeRecordBoundary returns the largest record boundary <= k.
func wholeRecordBoundary(sizes []int64, k int64) int64 {
	var off int64
	for _, sz := range sizes {
		if off+sz <= k {
			off += sz
		} else {
			break
		}
	}
	return off
}

// TestTornTailWithGarbage covers bit-rot rather than truncation: flip a
// byte anywhere in the final record and recovery must drop exactly that
// record.
func TestTornTailGarbageTail(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: true})
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _, _ := scanDir(dir)
	raw, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x5A // corrupt last record's payload
	if err := os.WriteFile(segs[0].path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(rec.Records) != 4 || !rec.Repaired {
		t.Fatalf("recovered %d records, repaired=%v", len(rec.Records), rec.Repaired)
	}
}

// TestMidLogCorruptionFails: damage in a NON-final segment is real data
// loss, not a torn tail — recovery must refuse rather than silently
// drop acknowledged records.
func TestMidLogCorruptionFails(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SegmentBytes: 128})
	for i := 0; i < 20; i++ {
		if _, err := l.Append([]byte("0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _, _ := scanDir(dir)
	if len(segs) < 3 {
		t.Fatalf("want >=3 segments, got %d", len(segs))
	}
	raw, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	raw[recordHeader] ^= 0xFF // first record's payload in the FIRST segment
	if err := os.WriteFile(segs[0].path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("mid-log corruption was silently accepted")
	}
}

// TestCrashDuringSnapshotLeavesTemp: a .tmp snapshot left by a crash
// mid-write must be ignored (and the previous state recovered).
func TestCrashDuringSnapshotIgnoresTemp(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Simulate a crash between temp write and rename.
	tmp := filepath.Join(dir, snapshotName(3)+".tmp")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotSeq != 0 || len(rec.Records) != 3 {
		t.Fatalf("recovered snap=%d records=%d", rec.SnapshotSeq, len(rec.Records))
	}
}

// TestEmptyActiveSegmentAfterRotationCrash: a crash right after
// rotation leaves a zero-byte active segment; recovery must treat it as
// clean and keep appending into it.
func TestEmptyActiveSegmentRecovery(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SegmentBytes: 64})
	for i := 0; i < 4; i++ {
		if _, err := l.Append(make([]byte, 56)); err != nil { // each append rotates
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _, _ := scanDir(dir)
	last := segs[len(segs)-1]
	if last.size != 0 {
		t.Fatalf("expected empty active segment, size=%d", last.size)
	}
	l2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(rec.Records) != 4 || rec.Repaired {
		t.Fatalf("records=%d repaired=%v", len(rec.Records), rec.Repaired)
	}
	if seq, err := l2.Append([]byte("y")); err != nil || seq != 5 {
		t.Fatalf("seq=%d err=%v", seq, err)
	}
}

// TestReopenBetweenSnapshotAndCompact: a crash in the window after
// WriteSnapshot but before Compact leaves segments whose records the
// snapshot already covers. Reopening must succeed (they are legitimate,
// just superseded) and must not re-surface the covered records.
func TestReopenBetweenSnapshotAndCompact(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WriteSnapshot(5, []byte("state@5")); err != nil {
		t.Fatal(err)
	}
	// Crash here: no Compact. The old segment still holds records 1-5.
	l.Close()

	l2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen between snapshot and compact: %v", err)
	}
	if rec.SnapshotSeq != 5 || len(rec.Records) != 0 {
		t.Fatalf("snap=%d tail=%d, want 5/0", rec.SnapshotSeq, len(rec.Records))
	}
	// The next checkpoint cycle still compacts the stale segment.
	if _, err := l2.Append([]byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := l2.WriteSnapshot(6, []byte("state@6")); err != nil {
		t.Fatal(err)
	}
	if _, err := l2.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := l2.Stats(); st.Segments != 1 {
		t.Fatalf("stale segments survived compaction: %d", st.Segments)
	}
	l2.Close()
}

// TestMissingSegmentFailsLoudly: a deleted middle segment is a gap in
// acknowledged history — recovery must refuse, not silently skip it.
func TestMissingSegmentFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SegmentBytes: 128})
	for i := 0; i < 20; i++ {
		if _, err := l.Append([]byte("0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _, _ := scanDir(dir)
	if len(segs) < 3 {
		t.Fatalf("want >=3 segments, got %d", len(segs))
	}
	if err := os.Remove(segs[1].path); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("missing middle segment was silently accepted")
	}
}

// TestCorruptSnapshotAfterCompactionFailsLoudly: if the only snapshot is
// corrupt and the pre-snapshot segments are already compacted away, the
// history cannot be reconstructed — recovery must fail, not quietly
// come back empty.
func TestCorruptSnapshotAfterCompactionFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WriteSnapshot(5, []byte("state@5")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("tail")); err != nil { // seq 6, in new segment
		t.Fatal(err)
	}
	l.Close()
	snap := filepath.Join(dir, snapshotName(5))
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(snap, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("unreconstructable history was silently accepted")
	}
}

// TestIOErrorPoisonsLog: after the first write failure nothing further
// may be staged or snapshotted — otherwise later writes would leave a
// sequence gap that recovery truncates acknowledged records at.
func TestIOErrorPoisonsLog(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	if _, err := l.Append([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	l.f.Close() // yank the file out from under the log: next write fails
	if _, err := l.Append([]byte("boom")); err == nil {
		t.Fatal("write on closed file succeeded?")
	}
	if _, err := l.Append([]byte("after")); err == nil {
		t.Fatal("poisoned log accepted a new record")
	}
	if err := l.WriteSnapshot(1, []byte("snap")); err == nil {
		t.Fatal("poisoned log accepted a snapshot")
	}
	if err := l.Sync(); err == nil {
		t.Fatal("poisoned log reported a clean sync")
	}
}

// TestBitRotBeforeIntactRecordsIsFlagged: damage mid-way through the
// final segment with valid frames after it is ambiguous — it could be
// out-of-order writeback of an unacknowledged batch (must boot) or bit
// rot over acknowledged records (real loss). Recovery truncates like a
// torn tail but must raise SuspectBitRot so the operator is told.
func TestBitRotBeforeIntactRecordsIsFlagged(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: true})
	for i := 0; i < 10; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("record-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _, _ := scanDir(dir)
	raw, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the 3rd record's payload: records 4..10 stay
	// bit-perfect on disk after the damage.
	recSize := recordHeader + len("record-00")
	raw[2*recSize+recordHeader] ^= 0xFF
	if err := os.WriteFile(segs[0].path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("ambiguous tail damage must not block boot: %v", err)
	}
	defer l2.Close()
	if len(rec.Records) != 2 || !rec.Repaired {
		t.Fatalf("recovered %d records, repaired=%v; want the 2-record prefix", len(rec.Records), rec.Repaired)
	}
	if !rec.SuspectBitRot {
		t.Fatal("intact frames after the damage were truncated without raising SuspectBitRot")
	}
}

// TestPlainTornTailNotFlagged: an ordinary truncation (no valid frames
// after the tear) must not raise the bit-rot suspicion.
func TestPlainTornTailNotFlagged(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte("abcdefgh")); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _, _ := scanDir(dir)
	raw, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segs[0].path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Repaired || rec.SuspectBitRot {
		t.Fatalf("repaired=%v suspect=%v; want repaired without suspicion", rec.Repaired, rec.SuspectBitRot)
	}
}
