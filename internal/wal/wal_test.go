package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func mustOpen(t *testing.T, dir string, opts Options) (*Log, *RecoveredState) {
	t.Helper()
	l, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func TestAppendReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := mustOpen(t, dir, Options{Fsync: true})
	if rec.SnapshotSeq != 0 || len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	const n = 50
	for i := 0; i < n; i++ {
		seq, err := l.Append([]byte(fmt.Sprintf("rec-%03d", i)))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l2, rec2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	if len(rec2.Records) != n {
		t.Fatalf("recovered %d records, want %d", len(rec2.Records), n)
	}
	for i, r := range rec2.Records {
		if r.Seq != uint64(i+1) || string(r.Payload) != fmt.Sprintf("rec-%03d", i) {
			t.Fatalf("record %d = {%d %q}", i, r.Seq, r.Payload)
		}
	}
	// Appends continue the sequence.
	seq, err := l2.Append([]byte("after"))
	if err != nil || seq != n+1 {
		t.Fatalf("append after reopen: seq=%d err=%v", seq, err)
	}
}

func TestEmptyPayloadAndLargeRecord(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	big := bytes.Repeat([]byte{0xAB}, 1<<20)
	if _, err := l.Append(nil); err != nil {
		t.Fatalf("empty append: %v", err)
	}
	if _, err := l.Append(big); err != nil {
		t.Fatalf("big append: %v", err)
	}
	l.Close()
	_, rec := mustOpen(t, dir, Options{})
	if len(rec.Records) != 2 || len(rec.Records[0].Payload) != 0 || !bytes.Equal(rec.Records[1].Payload, big) {
		t.Fatalf("recovered %d records", len(rec.Records))
	}
}

func TestRotationProducesOrderedSegments(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SegmentBytes: 256})
	for i := 0; i < 40; i++ {
		if _, err := l.Append(bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected rotation, got %d segments", st.Segments)
	}
	l.Close()

	// Rotation invariant: each non-final segment's records end exactly
	// at the next segment's name minus one.
	segs, _, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	prev := uint64(0)
	total := 0
	for i, sg := range segs {
		res, err := scanSegment(sg.path)
		if err != nil || res.torn {
			t.Fatalf("segment %s: torn=%v err=%v", sg.path, res.torn, err)
		}
		if len(res.records) > 0 {
			if res.records[0].Seq < sg.firstSeq {
				t.Fatalf("segment %s holds seq %d below its name", sg.path, res.records[0].Seq)
			}
			prev = res.records[len(res.records)-1].Seq
		}
		if i+1 < len(segs) && prev != segs[i+1].firstSeq-1 {
			t.Fatalf("segment %s ends at %d, next starts at %d", sg.path, prev, segs[i+1].firstSeq)
		}
		total += len(res.records)
	}
	if total != 40 {
		t.Fatalf("recovered %d records across segments, want 40", total)
	}
}

func TestSnapshotAndCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SegmentBytes: 256})
	for i := 0; i < 30; i++ {
		if _, err := l.Append(bytes.Repeat([]byte{1}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WriteSnapshot(30, []byte("state@30")); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if _, err := l.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	st := l.Stats()
	if st.Segments != 1 {
		t.Fatalf("post-compaction segments = %d, want 1 (active only)", st.Segments)
	}
	// Tail records after the snapshot survive recovery on top of it.
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte("tail")); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	_, rec := mustOpen(t, dir, Options{})
	if rec.SnapshotSeq != 30 || string(rec.SnapshotPayload) != "state@30" {
		t.Fatalf("snapshot = %d %q", rec.SnapshotSeq, rec.SnapshotPayload)
	}
	if len(rec.Records) != 5 || rec.Records[0].Seq != 31 {
		t.Fatalf("tail = %d records starting at %d", len(rec.Records), rec.Records[0].Seq)
	}
}

func TestCompactionBoundsDiskAcrossCycles(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SegmentBytes: 512})
	seq := uint64(0)
	var maxFiles, maxBytes int64
	for cycle := 0; cycle < 4; cycle++ {
		for i := 0; i < 50; i++ {
			s, err := l.Append(bytes.Repeat([]byte{2}, 64))
			if err != nil {
				t.Fatal(err)
			}
			seq = s
		}
		if err := l.WriteSnapshot(seq, []byte("snap")); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Compact(); err != nil {
			t.Fatal(err)
		}
		files, bytes := dirUsage(t, dir)
		if files > maxFiles {
			maxFiles = files
		}
		if bytes > maxBytes {
			maxBytes = bytes
		}
	}
	defer l.Close()
	// After each snapshot+compact: one snapshot, the fresh active
	// segment, possibly one superseded snapshot pending next compact.
	if maxFiles > 3 {
		t.Fatalf("disk not bounded: %d files after compaction", maxFiles)
	}
	if maxBytes > 4096 {
		t.Fatalf("disk not bounded: %d bytes after compaction", maxBytes)
	}
}

func dirUsage(t *testing.T, dir string) (files, bytes int64) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		files++
		bytes += info.Size()
	}
	return files, bytes
}

func TestCorruptSnapshotFallsBackToReplay(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	for i := 0; i < 10; i++ {
		if _, err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WriteSnapshot(10, []byte("good")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Flip a payload byte in the snapshot: CRC must reject it and
	// recovery must fall back to replaying the (uncompacted) segments.
	snap := filepath.Join(dir, snapshotName(10))
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(snap, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := mustOpen(t, dir, Options{})
	if rec.SnapshotSeq != 0 {
		t.Fatalf("corrupt snapshot accepted (seq %d)", rec.SnapshotSeq)
	}
	if len(rec.Records) != 10 {
		t.Fatalf("fallback replay recovered %d records, want 10", len(rec.Records))
	}
}

func TestConcurrentAppendsGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: true})
	const writers, per = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Appends != writers*per {
		t.Fatalf("appends = %d", st.Appends)
	}
	if st.Commits > st.Appends {
		t.Fatalf("commits (%d) exceed appends (%d)", st.Commits, st.Appends)
	}
	l.Close()

	_, rec := mustOpen(t, dir, Options{})
	if len(rec.Records) != writers*per {
		t.Fatalf("recovered %d, want %d", len(rec.Records), writers*per)
	}
	for i, r := range rec.Records {
		if r.Seq != uint64(i+1) {
			t.Fatalf("sequence gap at %d: %d", i, r.Seq)
		}
	}
}

func TestStageCommitOrderingSurvivesInterleaving(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	// Stage several records before committing any: commit of the last
	// ticket must flush all of them (leader steals the whole buffer).
	var tickets []Ticket
	for i := 0; i < 5; i++ {
		tk, err := l.Stage([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	if err := tickets[4].Commit(); err != nil {
		t.Fatal(err)
	}
	for _, tk := range tickets {
		if err := tk.Commit(); err != nil { // already durable: instant
			t.Fatal(err)
		}
	}
	l.Close()
	_, rec := mustOpen(t, dir, Options{})
	if len(rec.Records) != 5 {
		t.Fatalf("recovered %d, want 5", len(rec.Records))
	}
}

func TestClosedLogRefusesWrites(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	l.Close()
	if _, err := l.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("append on closed log: %v", err)
	}
	if err := l.Close(); err != ErrClosed {
		t.Fatalf("double close: %v", err)
	}
}

// TestSecondOpenIsLockedOut: two live logs on one directory would
// interleave sequence numbers; the flock must refuse the second opener
// until the first closes.
func TestSecondOpenIsLockedOut(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second Open on a live directory succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	l2.Close()
}

// TestOversizedPayloadRefused: a payload the reader would reject as
// corruption must never be acknowledged in the first place.
func TestOversizedPayloadRefused(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	defer l.Close()
	huge := make([]byte, maxRecordBytes+1) // 1 GiB + 1; freed right after
	if _, err := l.Append(huge); err == nil {
		t.Fatal("oversized payload was acknowledged")
	}
	if _, err := l.Append([]byte("still works")); err != nil {
		t.Fatalf("log unusable after refusing oversized payload: %v", err)
	}
}
