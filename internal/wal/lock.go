package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive advisory flock on dir/LOCK so two
// processes can never append into the same journal (interleaved
// sequence numbers would read as corruption on the next recovery).
// The kernel releases the lock when the holding process dies — kill -9
// included — so there is no stale-lock recovery to do.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: lock %s: %w", dir, err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("wal: %s is locked by another process: %w", dir, err)
	}
	return f, nil
}

// unlockDir releases the directory lock.
func unlockDir(f *os.File) {
	if f != nil {
		_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		_ = f.Close()
	}
}
