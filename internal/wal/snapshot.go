package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// snapshotMagic opens every snapshot file; a version bump changes the
// trailing digit.
var snapshotMagic = [8]byte{'Y', 'P', 'W', 'S', 'N', 'A', 'P', '1'}

// snapshotHeader is magic(8) + seq(8) + payloadLen(8) + crc32c(4).
const snapshotHeader = 28

// WriteFileAtomic writes the concatenation of chunks to path via a
// temp file in the same directory (write, fsync, rename, directory
// fsync): a crash leaves either the old file or the complete new one
// under the live name, never a partial. Shared by WAL snapshots and
// provstore's PROV-JSON exports.
func WriteFileAtomic(path string, chunks ...[]byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	for _, c := range chunks {
		if _, err = f.Write(c); err != nil {
			break
		}
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Chmod(tmp, 0o644)
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		_ = os.Remove(tmp)
		return err
	}
	syncDir(filepath.Dir(path))
	return nil
}

// WriteSnapshotTo writes one snapshot file covering every record with
// sequence <= seq into dir, atomically (see WriteFileAtomic).
func WriteSnapshotTo(dir string, seq uint64, payload []byte) error {
	var hdr [snapshotHeader]byte
	copy(hdr[0:8], snapshotMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[24:28], crc32.Checksum(payload, castagnoli))
	if err := WriteFileAtomic(filepath.Join(dir, snapshotName(seq)), hdr[:], payload); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	return nil
}

// WriteSnapshot is WriteSnapshotTo on the open log: it flushes pending
// records, stamps the snapshot, rotates the active segment so the
// covered records become compactable, and advances the snapshot
// horizon. seq must not exceed the last staged sequence.
func (l *Log) WriteSnapshot(seq uint64, payload []byte) error {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	if err := l.flushAndSync(); err != nil {
		return err
	}
	if seq > l.lastWritten {
		return fmt.Errorf("wal: snapshot seq %d ahead of log tail %d", seq, l.lastWritten)
	}
	if err := WriteSnapshotTo(l.dir, seq, payload); err != nil {
		return err
	}
	if seq > l.snapSeq {
		l.snapSeq = seq
	}
	// Rotate a non-empty active segment so its records (all <= the
	// snapshot horizon once seq == lastWritten) can be compacted.
	if l.fSize > 0 {
		if err := l.rotate(l.lastWritten + 1); err != nil {
			return err
		}
	}
	l.statsMu.Lock()
	l.snaps++
	l.statsMu.Unlock()
	return nil
}

// readSnapshot validates and returns a snapshot file's payload and the
// sequence number it covers.
func readSnapshot(path string) ([]byte, uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: read snapshot %s: %w", path, err)
	}
	if len(data) < snapshotHeader || [8]byte(data[0:8]) != snapshotMagic {
		return nil, 0, fmt.Errorf("wal: snapshot %s: bad header", path)
	}
	seq := binary.LittleEndian.Uint64(data[8:16])
	n := binary.LittleEndian.Uint64(data[16:24])
	if uint64(len(data)-snapshotHeader) != n {
		return nil, 0, fmt.Errorf("wal: snapshot %s: truncated payload", path)
	}
	payload := data[snapshotHeader:]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[24:28]) {
		return nil, 0, fmt.Errorf("wal: snapshot %s: checksum mismatch", path)
	}
	return payload, seq, nil
}

// Compact deletes closed segments whose every record is covered by the
// latest snapshot, plus snapshots older than that snapshot. The active
// segment is never removed. Returns the number of segments deleted.
func (l *Log) Compact() (int, error) {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	removed := 0
	// Segment i's last record is segs[i+1].firstSeq-1 by the rotation
	// invariant, so it is fully covered when that is <= snapSeq — and
	// releasable only once every tracked replication cursor has streamed
	// past it (see SetCompactFloor).
	floor := l.compactFloor.Load()
	for len(l.segs) > 1 && l.segs[1].firstSeq-1 <= l.snapSeq && l.segs[1].firstSeq-1 <= floor {
		if err := os.Remove(l.segs[0].path); err != nil && !os.IsNotExist(err) {
			return removed, fmt.Errorf("wal: compact: %w", err)
		}
		l.segs = l.segs[1:]
		removed++
	}
	// Retire superseded snapshots.
	_, snaps, err := scanDir(l.dir)
	if err != nil {
		return removed, err
	}
	for _, sn := range snaps {
		if sn.seq < l.snapSeq {
			if err := os.Remove(sn.path); err != nil && !os.IsNotExist(err) {
				return removed, fmt.Errorf("wal: compact: %w", err)
			}
		}
	}
	if removed > 0 {
		syncDir(l.dir)
	}
	l.statsMu.Lock()
	l.removed += uint64(removed)
	l.statsMu.Unlock()
	return removed, nil
}
