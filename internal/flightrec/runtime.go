package flightrec

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// RuntimeSample is one poll of the runtime/metrics package. The pause
// and latency quantiles are over the cumulative distribution since
// process start (runtime histograms are never reset), so a step
// change in the window marks when the tail moved.
type RuntimeSample struct {
	UnixNano    int64   `json:"unix_nano"`
	HeapBytes   uint64  `json:"heap_bytes"`
	Goroutines  int64   `json:"goroutines"`
	GCCycles    uint64  `json:"gc_cycles"`
	GCPauseP99  float64 `json:"gc_pause_p99_s"`
	SchedLatP99 float64 `json:"sched_lat_p99_s"`
}

const (
	rmHeap  = "/memory/classes/heap/objects:bytes"
	rmGor   = "/sched/goroutines:goroutines"
	rmGC    = "/gc/cycles/total:gc-cycles"
	rmPause = "/gc/pauses:seconds"
	rmSched = "/sched/latencies:seconds"
)

// runtimePoller keeps a rolling window of RuntimeSamples. The window
// mutex is touched once per poll interval and per snapshot — never on
// the request path.
type runtimePoller struct {
	every time.Duration
	max   int

	mu     sync.Mutex
	window []RuntimeSample

	stop chan struct{}
	done chan struct{}
}

func newRuntimePoller(every time.Duration, max int) *runtimePoller {
	p := &runtimePoller{
		every: every,
		max:   max,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	p.poll() // seed the window so gauges are live immediately
	go p.run()
	return p
}

func (p *runtimePoller) run() {
	defer close(p.done)
	t := time.NewTicker(p.every)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.poll()
		}
	}
}

func (p *runtimePoller) close() {
	close(p.stop)
	<-p.done
}

func (p *runtimePoller) poll() {
	samples := []metrics.Sample{
		{Name: rmHeap}, {Name: rmGor}, {Name: rmGC}, {Name: rmPause}, {Name: rmSched},
	}
	metrics.Read(samples)
	s := RuntimeSample{UnixNano: time.Now().UnixNano()}
	for _, m := range samples {
		switch m.Name {
		case rmHeap:
			if m.Value.Kind() == metrics.KindUint64 {
				s.HeapBytes = m.Value.Uint64()
			}
		case rmGor:
			if m.Value.Kind() == metrics.KindUint64 {
				s.Goroutines = int64(m.Value.Uint64())
			}
		case rmGC:
			if m.Value.Kind() == metrics.KindUint64 {
				s.GCCycles = m.Value.Uint64()
			}
		case rmPause:
			if m.Value.Kind() == metrics.KindFloat64Histogram {
				s.GCPauseP99 = runtimeHistQuantile(m.Value.Float64Histogram(), 0.99)
			}
		case rmSched:
			if m.Value.Kind() == metrics.KindFloat64Histogram {
				s.SchedLatP99 = runtimeHistQuantile(m.Value.Float64Histogram(), 0.99)
			}
		}
	}
	p.mu.Lock()
	p.window = append(p.window, s)
	if len(p.window) > p.max {
		p.window = p.window[len(p.window)-p.max:]
	}
	p.mu.Unlock()
}

func (p *runtimePoller) latest() RuntimeSample {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.window) == 0 {
		return RuntimeSample{}
	}
	return p.window[len(p.window)-1]
}

// Window copies the retained samples, oldest first.
func (p *runtimePoller) Window() []RuntimeSample {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]RuntimeSample(nil), p.window...)
}

// runtimeHistQuantile resolves q over a runtime/metrics cumulative
// histogram to its bucket's upper bound. Bucket i spans
// [Buckets[i], Buckets[i+1]); the outermost bounds may be ±Inf.
func runtimeHistQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			ub := h.Buckets[i+1]
			if math.IsInf(ub, 1) {
				ub = h.Buckets[i] // fall back to the finite lower bound
			}
			return ub
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
