// Package flightrec is the flight recorder: a lock-cheap, bounded,
// in-memory retention layer over the per-request signal that the
// tracing and metrics layers otherwise discard when the response is
// written. It keeps three things always on:
//
//   - a ring of recently completed request traces with their full span
//     breakdowns, sampled by policy — errors, sheds, and anything over
//     the slow threshold are always kept, the unremarkable rest is
//     1-in-N sampled;
//   - a slow-query log: the top-K requests by duration per route
//     class, each carrying its trace ID, span timings (shard lock
//     wait, commit wait, cache time) and cache hit/miss state;
//   - a rolling window of runtime telemetry polled from
//     runtime/metrics (heap, goroutines, GC pause, scheduler
//     latency), exposed as gauges on the obs registry.
//
// Anomaly triggers — the store's fail-stop latch, replication-stream
// failure, a shed-rate spike, p99 over threshold — freeze all of it
// into a diagnostic Bundle retrievable over HTTP or dumped to disk,
// so last night's latency cliff can be explained without reproducing
// it.
//
// The recorder sits on the response path of every request, so the
// unsampled fast path is held to a handful of atomic operations
// (<100ns, enforced by BenchmarkFlightRecord); building the full
// record — span merging, allocation — is the caller's job and happens
// only after Observe says the request is worth keeping. Every
// exported method is safe on a nil *Recorder, so wiring is optional
// at every call site.
package flightrec

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Config shapes the recorder. Zero values take the documented
// defaults; negative values disable where noted.
type Config struct {
	TraceRing       int           // retained completed-request records, rounded up to a power of two (default 256)
	SlowLogK        int           // slow-log entries kept per route class (default 8)
	SlowThreshold   time.Duration // requests at or over this are always recorded (default 250ms)
	SlowLogFloor    time.Duration // requests under this never enter the slow log (default 100µs)
	SampleEvery     int           // record 1 in N unremarkable requests (default 16; <0 disables)
	MaxBundles      int           // frozen bundles retained (default 4)
	FreezeCooldown  time.Duration // minimum spacing between freezes of the same trigger kind (default 1m)
	P99Threshold    time.Duration // freeze when the recorder's rolling p99 exceeds this (0 disables)
	ShedSpikeWindow time.Duration // window for the shed-spike trigger (default 10s)
	ShedSpikeCount  int           // sheds within the window that freeze a bundle (0 disables)
	RuntimeEvery    time.Duration // runtime/metrics poll interval (default 1s)
	RuntimeWindow   int           // runtime samples retained (default 120)

	// Logf, when set, announces bundle freezes (log.Printf-shaped).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.TraceRing <= 0 {
		c.TraceRing = 256
	}
	if c.SlowLogK <= 0 {
		c.SlowLogK = 8
	}
	if c.SlowThreshold <= 0 {
		c.SlowThreshold = 250 * time.Millisecond
	}
	if c.SlowLogFloor == 0 {
		c.SlowLogFloor = 100 * time.Microsecond
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 16
	}
	if c.MaxBundles <= 0 {
		c.MaxBundles = 4
	}
	if c.FreezeCooldown <= 0 {
		c.FreezeCooldown = time.Minute
	}
	if c.ShedSpikeWindow <= 0 {
		c.ShedSpikeWindow = 10 * time.Second
	}
	if c.RuntimeEvery <= 0 {
		c.RuntimeEvery = time.Second
	}
	if c.RuntimeWindow <= 0 {
		c.RuntimeWindow = 120
	}
	return c
}

// Completed is one finished request as retained by the recorder.
// Records are immutable once added, so snapshots share pointers.
type Completed struct {
	Trace  string        `json:"trace"`
	Route  string        `json:"route"`
	Status int           `json:"status"`
	Shed   bool          `json:"shed,omitempty"`
	Cache  string        `json:"cache,omitempty"` // X-Yprov-Cache state: hit/miss/bypass
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur_ns"`
	Spans  []Span        `json:"spans,omitempty"`
}

// Span is one named stage timing inside a retained record.
type Span struct {
	Name string        `json:"name"`
	Dur  time.Duration `json:"dur_ns"`
}

// SpansFrom converts a trace's merged span records for retention.
func SpansFrom(rs []obs.SpanRecord) []Span {
	if len(rs) == 0 {
		return nil
	}
	out := make([]Span, len(rs))
	for i, s := range rs {
		out[i] = Span{Name: s.Name, Dur: s.Dur}
	}
	return out
}

// Recorder is the flight recorder. Create with New, wire metrics with
// RegisterObs, feed it from the response path with Observe/Add, and
// Close it on shutdown to stop the runtime poller.
type Recorder struct {
	cfg Config

	// Trace ring: head counts completed stores; a record lands at
	// (head-1)&mask. Writers never block each other or readers — a
	// snapshot may interleave records from adjacent generations, which
	// is fine for diagnostics.
	ring []atomic.Pointer[Completed]
	mask uint64
	head atomic.Uint64

	routes sync.Map // route class -> *slowRoute

	reqCtr  atomic.Uint64
	latHist *obs.Histogram // non-nil only when the p99 trigger is armed

	shedWindowStart atomic.Int64
	shedInWindow    atomic.Uint64
	failStopLatched atomic.Bool

	freezeMu   sync.Mutex
	lastFreeze map[string]time.Time
	bundles    []*Bundle
	latest     atomic.Pointer[Bundle]

	reg      *obs.Registry // set by RegisterObs; snapshotted into bundles
	configMu sync.Mutex
	config   []byte // server config JSON injected into bundles

	rt *runtimePoller

	recorded obs.Counter
	freezes  obs.Counter

	closeOnce sync.Once
}

// slowRoute is one route class's top-K slow log. minDur caches the
// smallest retained duration once the log is full, so the hot path
// can reject fast requests with one atomic load and no lock.
type slowRoute struct {
	mu      sync.Mutex
	entries []*Completed
	minDur  atomic.Int64 // 0 until full
}

// New builds a recorder and starts its runtime-telemetry poller.
func New(cfg Config) *Recorder {
	cfg = cfg.withDefaults()
	size := 1
	for size < cfg.TraceRing {
		size <<= 1
	}
	r := &Recorder{
		cfg:        cfg,
		ring:       make([]atomic.Pointer[Completed], size),
		mask:       uint64(size - 1),
		lastFreeze: make(map[string]time.Time),
		rt:         newRuntimePoller(cfg.RuntimeEvery, cfg.RuntimeWindow),
	}
	if cfg.P99Threshold > 0 {
		r.latHist = obs.NewDurationHistogram()
	}
	return r
}

// Close stops the runtime poller. Safe on nil and safe to call twice.
func (r *Recorder) Close() {
	if r == nil {
		return
	}
	r.closeOnce.Do(r.rt.close)
}

// SetConfig injects the server's effective-config JSON, included
// verbatim in every bundle frozen afterwards.
func (r *Recorder) SetConfig(raw []byte) {
	if r == nil {
		return
	}
	r.configMu.Lock()
	r.config = append([]byte(nil), raw...)
	r.configMu.Unlock()
}

// Observe feeds one completed request's cheap facts into the recorder
// and reports whether the caller should build the full record and Add
// it. This is the per-request hot path: when it returns false the
// cost is a few atomic operations, no locks, no allocation.
func (r *Recorder) Observe(route string, status int, shed bool, dur time.Duration) bool {
	if r == nil {
		return false
	}
	n := r.reqCtr.Add(1)
	if h := r.latHist; h != nil {
		h.ObserveDuration(dur)
		if n&1023 == 0 {
			r.checkP99()
		}
	}
	if shed {
		r.noteShed()
	}
	// Always keep server errors, sheds, and slow requests.
	if status >= 500 || status == 429 || shed || dur >= r.cfg.SlowThreshold {
		return true
	}
	// Keep anything that would enter its route's top-K slow log.
	if dur >= r.cfg.SlowLogFloor && r.slowQualifies(route, dur) {
		return true
	}
	// Reservoir-sample the unremarkable rest.
	return r.cfg.SampleEvery > 0 && n%uint64(r.cfg.SampleEvery) == 0
}

func (r *Recorder) slowQualifies(route string, dur time.Duration) bool {
	v, ok := r.routes.Load(route)
	if !ok {
		return true // first requests on a route seed its slow log
	}
	return int64(dur) >= v.(*slowRoute).minDur.Load()
}

// Add retains a fully built record. Call it only when Observe
// returned true for the same request; c must not be mutated after.
func (r *Recorder) Add(c *Completed) {
	if r == nil || c == nil {
		return
	}
	h := r.head.Add(1)
	r.ring[(h-1)&r.mask].Store(c)
	r.recorded.Inc()
	if c.Dur >= r.cfg.SlowLogFloor {
		r.slowInsert(c)
	}
}

func (r *Recorder) slowInsert(c *Completed) {
	v, _ := r.routes.LoadOrStore(c.Route, &slowRoute{})
	s := v.(*slowRoute)
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.entries) < r.cfg.SlowLogK {
		s.entries = append(s.entries, c)
		if len(s.entries) == r.cfg.SlowLogK {
			s.minDur.Store(s.minEntryLocked())
		}
		return
	}
	if int64(c.Dur) <= s.minDur.Load() {
		return // raced below the threshold since the fast-path check
	}
	mi := 0
	for i := range s.entries {
		if s.entries[i].Dur < s.entries[mi].Dur {
			mi = i
		}
	}
	s.entries[mi] = c
	s.minDur.Store(s.minEntryLocked())
}

func (s *slowRoute) minEntryLocked() int64 {
	min := int64(1<<63 - 1)
	for _, e := range s.entries {
		if int64(e.Dur) < min {
			min = int64(e.Dur)
		}
	}
	return min
}

// Traces returns up to n of the most recently retained records,
// newest first (best effort under concurrent writers). n <= 0 means
// the whole ring.
func (r *Recorder) Traces(n int) []*Completed {
	if r == nil {
		return nil
	}
	if n <= 0 || n > len(r.ring) {
		n = len(r.ring)
	}
	h := r.head.Load()
	out := make([]*Completed, 0, n)
	for i := uint64(0); i < uint64(n); i++ {
		if c := r.ring[(h-1-i)&r.mask].Load(); c != nil {
			out = append(out, c)
		}
	}
	return out
}

// TraceByID scans the ring for a retained record with the given trace
// ID, or nil.
func (r *Recorder) TraceByID(id string) *Completed {
	if r == nil || id == "" {
		return nil
	}
	for i := range r.ring {
		if c := r.ring[i].Load(); c != nil && c.Trace == id {
			return c
		}
	}
	return nil
}

// SlowLog snapshots the per-route top-K, each route's entries sorted
// slowest first.
func (r *Recorder) SlowLog() map[string][]*Completed {
	if r == nil {
		return nil
	}
	out := make(map[string][]*Completed)
	r.routes.Range(func(k, v any) bool {
		s := v.(*slowRoute)
		s.mu.Lock()
		entries := append([]*Completed(nil), s.entries...)
		s.mu.Unlock()
		for i := 1; i < len(entries); i++ { // insertion sort, K is small
			for j := i; j > 0 && entries[j].Dur > entries[j-1].Dur; j-- {
				entries[j], entries[j-1] = entries[j-1], entries[j]
			}
		}
		out[k.(string)] = entries
		return true
	})
	return out
}

// RequestsSeen returns the number of completed requests observed.
func (r *Recorder) RequestsSeen() uint64 {
	if r == nil {
		return 0
	}
	return r.reqCtr.Load()
}

// NoteFailStop freezes a bundle the first time the store's fail-stop
// latch is seen tripped; later calls are free no-ops.
func (r *Recorder) NoteFailStop(reason string) {
	if r == nil || !r.failStopLatched.CompareAndSwap(false, true) {
		return
	}
	r.Freeze("fail-stop", reason)
}

func (r *Recorder) noteShed() {
	if r.cfg.ShedSpikeCount <= 0 {
		return
	}
	now := time.Now().UnixNano()
	start := r.shedWindowStart.Load()
	if now-start > int64(r.cfg.ShedSpikeWindow) {
		if r.shedWindowStart.CompareAndSwap(start, now) {
			r.shedInWindow.Store(1)
			return
		}
	}
	if r.shedInWindow.Add(1) == uint64(r.cfg.ShedSpikeCount) {
		r.Freeze("shed-spike", strconv.Itoa(r.cfg.ShedSpikeCount)+" sheds within "+r.cfg.ShedSpikeWindow.String())
	}
}

func (r *Recorder) checkP99() {
	if p99 := time.Duration(r.latHist.Quantile(0.99) * 1e9); p99 > r.cfg.P99Threshold {
		r.Freeze("p99-over-threshold", "p99="+p99.String()+" threshold="+r.cfg.P99Threshold.String())
	}
}

// RegisterObs exposes recorder and runtime-telemetry instruments and
// remembers the registry for bundle metric snapshots.
func (r *Recorder) RegisterObs(reg *obs.Registry) {
	if r == nil {
		return
	}
	r.reg = reg
	reg.RegisterCounterFunc("yprov_flightrec_requests_total",
		"Completed requests seen by the flight recorder.", nil,
		func() float64 { return float64(r.reqCtr.Load()) })
	reg.RegisterCounter("yprov_flightrec_records_total",
		"Request records retained by the flight recorder (sampled in).", nil, &r.recorded)
	reg.RegisterCounter("yprov_flightrec_freezes_total",
		"Diagnostic bundles frozen by anomaly triggers.", nil, &r.freezes)
	reg.RegisterGaugeFunc("yprov_runtime_heap_bytes",
		"Live heap object bytes (runtime/metrics).", nil,
		func() float64 { return float64(r.rt.latest().HeapBytes) })
	reg.RegisterGaugeFunc("yprov_runtime_goroutines",
		"Goroutine count (runtime/metrics).", nil,
		func() float64 { return float64(r.rt.latest().Goroutines) })
	reg.RegisterCounterFunc("yprov_runtime_gc_cycles_total",
		"Completed GC cycles (runtime/metrics).", nil,
		func() float64 { return float64(r.rt.latest().GCCycles) })
	reg.RegisterGaugeFunc("yprov_runtime_gc_pause_p99_seconds",
		"p99 GC stop-the-world pause since process start (runtime/metrics).", nil,
		func() float64 { return r.rt.latest().GCPauseP99 })
	reg.RegisterGaugeFunc("yprov_runtime_sched_latency_p99_seconds",
		"p99 goroutine scheduling latency since process start (runtime/metrics).", nil,
		func() float64 { return r.rt.latest().SchedLatP99 })
}
