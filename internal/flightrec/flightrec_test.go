package flightrec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func testConfig() Config {
	return Config{
		TraceRing:     64,
		SlowLogK:      4,
		SlowThreshold: 100 * time.Millisecond,
		SlowLogFloor:  time.Millisecond,
		SampleEvery:   -1, // reservoir off unless a test opts in
		RuntimeEvery:  time.Hour,
	}
}

// TestSamplingPolicy: errors, sheds, and slow requests are always
// recorded; unremarkable requests follow the 1-in-N reservoir.
func TestSamplingPolicy(t *testing.T) {
	cfg := testConfig()
	cfg.SampleEvery = 10
	r := New(cfg)
	defer r.Close()

	fast := 10 * time.Microsecond // below SlowLogFloor: never slow-log seeded
	for _, tc := range []struct {
		name   string
		status int
		shed   bool
		dur    time.Duration
	}{
		{"server error", 500, false, fast},
		{"shed status", 429, false, fast},
		{"shed flag", 200, true, fast},
		{"slow", 200, false, 150 * time.Millisecond},
	} {
		if !r.Observe("documents", tc.status, tc.shed, tc.dur) {
			t.Errorf("%s: not sampled, must always be", tc.name)
		}
	}

	sampled := 0
	for i := 0; i < 1000; i++ {
		if r.Observe("documents", 200, false, fast) {
			sampled++
		}
	}
	if sampled != 100 {
		t.Errorf("reservoir sampled %d of 1000, want exactly 100 (1 in 10)", sampled)
	}

	// With the reservoir disabled nothing unremarkable is kept.
	r2 := New(testConfig())
	defer r2.Close()
	for i := 0; i < 100; i++ {
		if r2.Observe("documents", 200, false, fast) {
			t.Fatal("sampled an unremarkable request with reservoir disabled")
		}
	}
}

// TestSlowLogTopK: the slow log keeps the top-K by duration per
// route, the cached min threshold gates the fast path, and entries
// come back sorted slowest first with their cache state.
func TestSlowLogTopK(t *testing.T) {
	r := New(testConfig())
	defer r.Close()

	// While a route's log is not full, qualifying durations sample in.
	if !r.Observe("search", 200, false, 2*time.Millisecond) {
		t.Fatal("first slow-log candidate not sampled")
	}
	for i := 1; i <= 10; i++ {
		r.Add(&Completed{
			Trace: fmt.Sprintf("t%d", i),
			Route: "search",
			Cache: "miss",
			Dur:   time.Duration(i) * time.Millisecond,
		})
	}
	log := r.SlowLog()
	entries := log["search"]
	if len(entries) != 4 {
		t.Fatalf("slow log kept %d entries, want K=4", len(entries))
	}
	for i, wantMs := range []int{10, 9, 8, 7} {
		if entries[i].Dur != time.Duration(wantMs)*time.Millisecond {
			t.Errorf("slow log [%d] = %v, want %dms", i, entries[i].Dur, wantMs)
		}
	}
	if entries[0].Trace != "t10" || entries[0].Cache != "miss" {
		t.Errorf("slowest entry = %+v, want trace t10 cache miss", entries[0])
	}

	// Full log: the cached min threshold rejects sub-min durations on
	// the fast path, accepts anything that would displace an entry.
	if r.Observe("search", 200, false, 3*time.Millisecond) {
		t.Error("3ms sampled in although the slow-log min is 7ms")
	}
	if !r.Observe("search", 200, false, 20*time.Millisecond) {
		t.Error("20ms must qualify for the slow log")
	}
	// A different route has its own empty log.
	if !r.Observe("lineage", 200, false, 2*time.Millisecond) {
		t.Error("fresh route must seed its own slow log")
	}
}

// TestTraceRing: the ring retains the newest records, newest first,
// and TraceByID finds retained records.
func TestTraceRing(t *testing.T) {
	cfg := testConfig()
	cfg.TraceRing = 8
	r := New(cfg)
	defer r.Close()
	for i := 1; i <= 20; i++ {
		r.Add(&Completed{Trace: fmt.Sprintf("t%d", i), Route: "documents", Dur: time.Microsecond})
	}
	traces := r.Traces(0)
	if len(traces) != 8 {
		t.Fatalf("ring holds %d, want 8", len(traces))
	}
	for i, c := range traces {
		if want := fmt.Sprintf("t%d", 20-i); c.Trace != want {
			t.Errorf("traces[%d] = %s, want %s", i, c.Trace, want)
		}
	}
	if got := r.Traces(3); len(got) != 3 || got[0].Trace != "t20" {
		t.Errorf("Traces(3) = %d entries first %s", len(got), got[0].Trace)
	}
	if c := r.TraceByID("t15"); c == nil || c.Trace != "t15" {
		t.Errorf("TraceByID(t15) = %+v", c)
	}
	if c := r.TraceByID("t1"); c != nil {
		t.Errorf("evicted trace still found: %+v", c)
	}
}

// TestRingAndSlowLogConcurrent hammers the ring and slow log from
// concurrent writers while readers snapshot — the -race check for the
// recorder's lock-free structures.
func TestRingAndSlowLogConcurrent(t *testing.T) {
	cfg := testConfig()
	cfg.SampleEvery = 2
	r := New(cfg)
	defer r.Close()
	const writers, perW = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() { // concurrent readers
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					for _, c := range r.Traces(0) {
						if c.Trace == "" {
							t.Error("retained record with empty trace ID")
							return
						}
					}
					for _, entries := range r.SlowLog() {
						for i := 1; i < len(entries); i++ {
							if entries[i].Dur > entries[i-1].Dur {
								t.Error("slow log snapshot not sorted")
								return
							}
						}
					}
					r.TraceByID("w3-17")
				}
			}
		}()
	}
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				dur := time.Duration(i%5000) * time.Microsecond
				if r.Observe("documents", 200, false, dur) {
					r.Add(&Completed{
						Trace: fmt.Sprintf("w%d-%d", g, i),
						Route: "documents",
						Dur:   dur,
						Spans: []Span{{Name: "lock", Dur: dur / 4}},
					})
				}
			}
		}(g)
	}
	for r.RequestsSeen() < writers*perW {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if got := r.RequestsSeen(); got != writers*perW {
		t.Fatalf("RequestsSeen = %d, want %d", got, writers*perW)
	}
}

// TestBundleFreezeDuringLoad: freezing while writers are adding
// records yields internally consistent, JSON-marshalable bundles.
func TestBundleFreezeDuringLoad(t *testing.T) {
	cfg := testConfig()
	cfg.SampleEvery = 1
	cfg.MaxBundles = 3
	cfg.FreezeCooldown = time.Nanosecond
	r := New(cfg)
	defer r.Close()
	reg := obs.NewRegistry()
	r.RegisterObs(reg)
	r.SetConfig([]byte(`{"addr":":3000"}`))

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					dur := time.Duration(i%1000) * time.Microsecond
					if r.Observe("batch", 200, false, dur) {
						r.Add(&Completed{Trace: fmt.Sprintf("g%d-%d", g, i), Route: "batch", Dur: dur})
					}
				}
			}
		}(g)
	}
	for i := 0; i < 25; i++ {
		b := r.Freeze("load-test", "")
		if b == nil {
			continue // suppressed by a same-instant freeze
		}
		if b.Requests < b.Records {
			t.Fatalf("bundle says %d requests < %d records", b.Requests, b.Records)
		}
		for _, c := range b.Traces {
			if c == nil || c.Trace == "" {
				t.Fatal("bundle trace missing or empty")
			}
		}
		raw, err := json.Marshal(b)
		if err != nil {
			t.Fatalf("bundle does not marshal: %v", err)
		}
		var back Bundle
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("bundle does not round-trip: %v", err)
		}
		if back.Reason != "load-test" || len(back.Config) == 0 || back.Metrics == "" {
			t.Fatalf("round-tripped bundle incomplete: reason=%q config=%d metrics=%d",
				back.Reason, len(back.Config), len(back.Metrics))
		}
	}
	close(stop)
	wg.Wait()
	if len(r.Bundles()) > cfg.MaxBundles {
		t.Fatalf("bundle retention grew past the cap: %d", len(r.Bundles()))
	}
}

// TestTriggers: fail-stop latches exactly once, shed spikes and p99
// breaches freeze, and the cooldown suppresses refreezes per kind.
func TestTriggers(t *testing.T) {
	t.Run("fail-stop latch", func(t *testing.T) {
		r := New(testConfig())
		defer r.Close()
		r.NoteFailStop("wal: disk gone")
		b := r.Frozen()
		if b == nil || !strings.Contains(b.Reason, "fail-stop: wal: disk gone") {
			t.Fatalf("Frozen = %+v", b)
		}
		r.NoteFailStop("again")
		if r.Frozen() != b {
			t.Fatal("fail-stop froze twice")
		}
	})
	t.Run("shed spike", func(t *testing.T) {
		cfg := testConfig()
		cfg.ShedSpikeCount = 5
		cfg.ShedSpikeWindow = time.Minute
		r := New(cfg)
		defer r.Close()
		for i := 0; i < 4; i++ {
			r.Observe("documents", 429, true, time.Millisecond)
		}
		if r.Frozen() != nil {
			t.Fatal("froze before the spike threshold")
		}
		r.Observe("documents", 429, true, time.Millisecond)
		b := r.Frozen()
		if b == nil || !strings.Contains(b.Reason, "shed-spike") {
			t.Fatalf("Frozen = %+v", b)
		}
	})
	t.Run("p99 over threshold", func(t *testing.T) {
		cfg := testConfig()
		cfg.P99Threshold = time.Millisecond
		r := New(cfg)
		defer r.Close()
		for i := 0; i < 1024; i++ {
			r.Observe("documents", 200, false, 10*time.Millisecond)
		}
		b := r.Frozen()
		if b == nil || !strings.Contains(b.Reason, "p99-over-threshold") {
			t.Fatalf("Frozen = %+v", b)
		}
	})
	t.Run("cooldown", func(t *testing.T) {
		r := New(testConfig()) // default 1m cooldown
		defer r.Close()
		if r.Freeze("kind-a", "first") == nil {
			t.Fatal("first freeze suppressed")
		}
		if r.Freeze("kind-a", "second") != nil {
			t.Fatal("cooldown did not suppress a refreeze")
		}
		if r.Freeze("kind-b", "other") == nil {
			t.Fatal("cooldown leaked across trigger kinds")
		}
	})
}

// TestRuntimeTelemetry: the poller window fills, gauges register, and
// the exposition including runtime gauges stays parser-valid.
func TestRuntimeTelemetry(t *testing.T) {
	cfg := testConfig()
	cfg.RuntimeEvery = 5 * time.Millisecond
	cfg.RuntimeWindow = 10
	r := New(cfg)
	defer r.Close()
	reg := obs.NewRegistry()
	r.RegisterObs(reg)

	deadline := time.Now().Add(2 * time.Second)
	for len(r.rt.Window()) < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	w := r.rt.Window()
	if len(w) < 3 {
		t.Fatalf("runtime window has %d samples, want >= 3", len(w))
	}
	last := w[len(w)-1]
	if last.HeapBytes == 0 || last.Goroutines == 0 {
		t.Fatalf("runtime sample looks empty: %+v", last)
	}
	if len(w) > cfg.RuntimeWindow {
		t.Fatalf("window grew past cap: %d", len(w))
	}

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if err := obs.ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("runtime gauge exposition invalid: %v\n%s", err, buf.String())
	}
	for _, want := range []string{"yprov_runtime_heap_bytes", "yprov_runtime_goroutines", "yprov_flightrec_requests_total"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

// TestNilRecorder: every exported method is a safe no-op on nil, so
// call sites never need wiring guards.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	if r.Observe("x", 500, true, time.Second) {
		t.Fatal("nil recorder sampled")
	}
	r.Add(&Completed{Trace: "t"})
	r.NoteFailStop("x")
	if r.Freeze("k", "d") != nil || r.Capture("c") != nil || r.Frozen() != nil {
		t.Fatal("nil recorder produced a bundle")
	}
	if r.Traces(0) != nil || r.SlowLog() != nil || r.TraceByID("t") != nil || r.Bundles() != nil {
		t.Fatal("nil recorder returned data")
	}
	r.SetConfig([]byte("{}"))
	r.Close()
}
