package flightrec

import (
	"bytes"
	"encoding/json"
	"runtime"
	"runtime/pprof"
	"time"
)

// Bundle is a frozen diagnostic snapshot: everything the recorder
// retained at the moment a trigger fired, plus a metrics exposition
// and a goroutine dump. It marshals to a single self-contained JSON
// document — the unit yprov-debug fetches and SIGQUIT dumps to disk.
type Bundle struct {
	Reason       string                  `json:"reason"`
	FrozenAt     time.Time               `json:"frozen_at"`
	Requests     uint64                  `json:"requests_seen"`
	Records      uint64                  `json:"records_retained"`
	NumGoroutine int                     `json:"num_goroutine"`
	Config       json.RawMessage         `json:"config,omitempty"`
	Traces       []*Completed            `json:"traces"`
	SlowLog      map[string][]*Completed `json:"slowlog"`
	Runtime      []RuntimeSample         `json:"runtime"`
	Metrics      string                  `json:"metrics,omitempty"`
	Goroutines   string                  `json:"goroutines,omitempty"`
}

// Capture builds a bundle from the recorder's current state without
// retaining it and without cooldown — the on-demand path (SIGQUIT,
// explicit fetch). Returns nil on a nil recorder.
func (r *Recorder) Capture(reason string) *Bundle {
	if r == nil {
		return nil
	}
	b := &Bundle{
		Reason:       reason,
		FrozenAt:     time.Now(),
		Requests:     r.reqCtr.Load(),
		Records:      r.recorded.Value(),
		NumGoroutine: runtime.NumGoroutine(),
		Traces:       r.Traces(0),
		SlowLog:      r.SlowLog(),
		Runtime:      r.rt.Window(),
	}
	r.configMu.Lock()
	if len(r.config) > 0 {
		b.Config = append(json.RawMessage(nil), r.config...)
	}
	r.configMu.Unlock()
	if r.reg != nil {
		var buf bytes.Buffer
		r.reg.WritePrometheus(&buf)
		b.Metrics = buf.String()
	}
	if p := pprof.Lookup("goroutine"); p != nil {
		var buf bytes.Buffer
		if err := p.WriteTo(&buf, 1); err == nil {
			b.Goroutines = buf.String()
		}
	}
	return b
}

// Freeze captures a bundle for an anomaly trigger and retains it,
// subject to the per-kind cooldown. Returns the bundle, or nil when
// the freeze was suppressed.
func (r *Recorder) Freeze(kind, detail string) *Bundle {
	if r == nil {
		return nil
	}
	now := time.Now()
	r.freezeMu.Lock()
	if last, ok := r.lastFreeze[kind]; ok && now.Sub(last) < r.cfg.FreezeCooldown {
		r.freezeMu.Unlock()
		return nil
	}
	r.lastFreeze[kind] = now
	r.freezeMu.Unlock()

	reason := kind
	if detail != "" {
		reason += ": " + detail
	}
	b := r.Capture(reason)

	r.freezeMu.Lock()
	r.bundles = append(r.bundles, b)
	if len(r.bundles) > r.cfg.MaxBundles {
		r.bundles = r.bundles[len(r.bundles)-r.cfg.MaxBundles:]
	}
	r.freezeMu.Unlock()
	r.latest.Store(b)
	r.freezes.Inc()
	if r.cfg.Logf != nil {
		r.cfg.Logf("flightrec: froze diagnostic bundle: %s (traces=%d slow_routes=%d)",
			reason, len(b.Traces), len(b.SlowLog))
	}
	return b
}

// Frozen returns the most recently frozen bundle, or nil.
func (r *Recorder) Frozen() *Bundle {
	if r == nil {
		return nil
	}
	return r.latest.Load()
}

// Bundles snapshots the retained frozen bundles, oldest first.
func (r *Recorder) Bundles() []*Bundle {
	if r == nil {
		return nil
	}
	r.freezeMu.Lock()
	defer r.freezeMu.Unlock()
	return append([]*Bundle(nil), r.bundles...)
}
