package prov

import (
	"math/rand"
	"strings"
	"testing"
)

func TestTurtleOutputShape(t *testing.T) {
	d := sampleDoc(t)
	ttl := d.Turtle()
	for _, want := range []string{
		"@prefix prov: <http://www.w3.org/ns/prov#> .",
		"ex:dataset a prov:Entity",
		"ex:train_run a prov:Activity",
		"ex:researcher a prov:Agent",
		"prov:startedAtTime",
		"ex:train_run prov:used ex:dataset .",
		"ex:model prov:wasGeneratedBy ex:train_run .",
		`"800000"^^xsd:long`,
	} {
		if !strings.Contains(ttl, want) {
			t.Errorf("turtle missing %q in:\n%s", want, ttl)
		}
	}
}

func TestTurtleRoundTrip(t *testing.T) {
	d := sampleDoc(t)
	back, err := ParseTurtle(d.Turtle())
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal(back) {
		t.Fatalf("turtle round-trip mismatch:\norig:\n%s\nback:\n%s", d.ProvN(), back.ProvN())
	}
}

func TestTurtleRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 40; i++ {
		d := NewDocument()
		if err := d.Merge(randomDoc(rng)); err != nil { // normalize duplicates
			t.Fatal(err)
		}
		back, err := ParseTurtle(d.Turtle())
		if err != nil {
			t.Fatalf("case %d: %v\n%s", i, err, d.Turtle())
		}
		if !d.Equal(back) {
			t.Fatalf("case %d: round-trip mismatch", i)
		}
	}
}

func TestTurtleStringEscaping(t *testing.T) {
	d := NewDocument()
	d.AddEntity("ex:e", Attrs{"ex:note": Str("line1\nline2 \"quoted\" and . dot; semi")})
	back, err := ParseTurtle(d.Turtle())
	if err != nil {
		t.Fatal(err)
	}
	got := back.Entities["ex:e"].Attrs["ex:note"].AsString()
	if got != "line1\nline2 \"quoted\" and . dot; semi" {
		t.Errorf("escaped string = %q", got)
	}
}

func TestParseTurtleErrors(t *testing.T) {
	for _, src := range []string{
		"ex:x a prov:Spaceship .",
		"ex:x prov:used .",         // missing object? parses as <2 fields after split
		`ex:x ex:attr "unclosed .`, // unterminated literal
		"@prefix broken",           // bad prefix
		`ex:orphan ex:attr "v" .`,  // attribute before declaration
	} {
		if _, err := ParseTurtle(src); err == nil {
			t.Errorf("ParseTurtle(%q) should fail", src)
		}
	}
}

func TestTurtleDeterministic(t *testing.T) {
	d := sampleDoc(t)
	if d.Turtle() != d.Turtle() {
		t.Error("turtle output must be deterministic")
	}
}
