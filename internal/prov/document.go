package prov

import (
	"sort"
	"strconv"
	"time"
)

// Attrs is an attribute bag keyed by qualified-name strings.
type Attrs map[string]Value

// Clone returns a copy of the attribute bag.
func (a Attrs) Clone() Attrs {
	if a == nil {
		return nil
	}
	c := make(Attrs, len(a))
	for k, v := range a {
		c[k] = v
	}
	return c
}

// SortedKeys returns the attribute keys in lexical order.
func (a Attrs) SortedKeys() []string {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Element is a named PROV element (entity, activity or agent).
type Element struct {
	ID    QName
	Attrs Attrs
}

// Activity extends Element with optional start and end times.
type Activity struct {
	Element
	StartTime time.Time
	EndTime   time.Time
}

// RelationKind enumerates the PROV relation types supported.
type RelationKind string

// Relation kinds, named after their PROV-JSON section names.
const (
	RelUsed             RelationKind = "used"
	RelWasGeneratedBy   RelationKind = "wasGeneratedBy"
	RelWasAssociatedW   RelationKind = "wasAssociatedWith"
	RelWasAttributedTo  RelationKind = "wasAttributedTo"
	RelWasDerivedFrom   RelationKind = "wasDerivedFrom"
	RelWasInformedBy    RelationKind = "wasInformedBy"
	RelActedOnBehalfOf  RelationKind = "actedOnBehalfOf"
	RelWasStartedBy     RelationKind = "wasStartedBy"
	RelWasEndedBy       RelationKind = "wasEndedBy"
	RelHadMember        RelationKind = "hadMember"
	RelSpecializationOf RelationKind = "specializationOf"
	RelAlternateOf      RelationKind = "alternateOf"
)

// AllRelationKinds lists every supported relation kind in a stable order.
var AllRelationKinds = []RelationKind{
	RelUsed, RelWasGeneratedBy, RelWasAssociatedW, RelWasAttributedTo,
	RelWasDerivedFrom, RelWasInformedBy, RelActedOnBehalfOf,
	RelWasStartedBy, RelWasEndedBy, RelHadMember,
	RelSpecializationOf, RelAlternateOf,
}

// relationRoles gives the PROV-JSON property names for (subject, object)
// of each relation kind.
var relationRoles = map[RelationKind][2]string{
	RelUsed:             {"prov:activity", "prov:entity"},
	RelWasGeneratedBy:   {"prov:entity", "prov:activity"},
	RelWasAssociatedW:   {"prov:activity", "prov:agent"},
	RelWasAttributedTo:  {"prov:entity", "prov:agent"},
	RelWasDerivedFrom:   {"prov:generatedEntity", "prov:usedEntity"},
	RelWasInformedBy:    {"prov:informed", "prov:informant"},
	RelActedOnBehalfOf:  {"prov:delegate", "prov:responsible"},
	RelWasStartedBy:     {"prov:activity", "prov:trigger"},
	RelWasEndedBy:       {"prov:activity", "prov:trigger"},
	RelHadMember:        {"prov:collection", "prov:entity"},
	RelSpecializationOf: {"prov:specificEntity", "prov:generalEntity"},
	RelAlternateOf:      {"prov:alternate1", "prov:alternate2"},
}

// RelationRoles returns the PROV-JSON subject and object property names
// for kind, e.g. ("prov:activity", "prov:entity") for used.
func RelationRoles(kind RelationKind) (subject, object string, ok bool) {
	r, ok := relationRoles[kind]
	return r[0], r[1], ok
}

// Relation is one edge of a provenance document. Subject and Object
// follow the orientation listed in relationRoles; Time is optional and
// only meaningful for used / wasGeneratedBy / wasStartedBy / wasEndedBy.
type Relation struct {
	ID      string // local relation identifier, e.g. "_:u1"
	Kind    RelationKind
	Subject QName
	Object  QName
	Time    time.Time
	Attrs   Attrs
}

// Document is an in-memory W3C PROV document.
type Document struct {
	Namespaces *NamespaceSet
	Entities   map[QName]*Element
	Activities map[QName]*Activity
	Agents     map[QName]*Element
	Relations  []*Relation

	relSeq int // monotonically increasing relation-id counter
}

// NewDocument returns an empty document with the default namespaces.
func NewDocument() *Document {
	return &Document{
		Namespaces: NewNamespaceSet(),
		Entities:   make(map[QName]*Element),
		Activities: make(map[QName]*Activity),
		Agents:     make(map[QName]*Element),
	}
}

// AddEntity inserts (or returns the existing) entity with the given id.
func (d *Document) AddEntity(id QName, attrs Attrs) *Element {
	if e, ok := d.Entities[id]; ok {
		e.Attrs = mergeAttrs(e.Attrs, attrs)
		return e
	}
	e := &Element{ID: id, Attrs: ensureAttrs(attrs)}
	d.Entities[id] = e
	return e
}

// AddActivity inserts (or returns the existing) activity with the given id.
func (d *Document) AddActivity(id QName, attrs Attrs) *Activity {
	if a, ok := d.Activities[id]; ok {
		a.Attrs = mergeAttrs(a.Attrs, attrs)
		return a
	}
	a := &Activity{Element: Element{ID: id, Attrs: ensureAttrs(attrs)}}
	d.Activities[id] = a
	return a
}

// AddAgent inserts (or returns the existing) agent with the given id.
func (d *Document) AddAgent(id QName, attrs Attrs) *Element {
	if g, ok := d.Agents[id]; ok {
		g.Attrs = mergeAttrs(g.Attrs, attrs)
		return g
	}
	g := &Element{ID: id, Attrs: ensureAttrs(attrs)}
	d.Agents[id] = g
	return g
}

func ensureAttrs(a Attrs) Attrs {
	if a == nil {
		return make(Attrs)
	}
	return a
}

// mergeAttrs copies src into dst, allocating dst only when there is
// something to copy (binary-decoded elements carry nil Attrs until an
// attribute actually lands on them).
func mergeAttrs(dst, src Attrs) Attrs {
	if len(src) == 0 {
		return dst
	}
	if dst == nil {
		dst = make(Attrs, len(src))
	}
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

// nextRelID mints a fresh blank-node relation identifier. Plain
// concatenation: Sprintf showed up in BuildProv profiles at ~9% of the
// relation-heavy document builds.
func (d *Document) nextRelID(kind RelationKind) string {
	d.relSeq++
	return "_:" + shortKind(kind) + strconv.Itoa(d.relSeq)
}

func shortKind(kind RelationKind) string {
	switch kind {
	case RelUsed:
		return "u"
	case RelWasGeneratedBy:
		return "g"
	case RelWasAssociatedW:
		return "assoc"
	case RelWasAttributedTo:
		return "attr"
	case RelWasDerivedFrom:
		return "d"
	case RelWasInformedBy:
		return "inf"
	case RelActedOnBehalfOf:
		return "del"
	case RelWasStartedBy:
		return "start"
	case RelWasEndedBy:
		return "end"
	case RelHadMember:
		return "mem"
	case RelSpecializationOf:
		return "spec"
	case RelAlternateOf:
		return "alt"
	}
	return "r"
}

// AddRelation appends a relation edge and returns it. A fresh identifier
// is minted when rel.ID is empty.
func (d *Document) AddRelation(rel Relation) *Relation {
	if rel.ID == "" {
		rel.ID = d.nextRelID(rel.Kind)
	}
	if rel.Attrs == nil {
		rel.Attrs = make(Attrs)
	}
	r := rel
	d.Relations = append(d.Relations, &r)
	return &r
}

// Used records that activity used entity at time t (zero time allowed).
func (d *Document) Used(activity, entity QName, t time.Time) *Relation {
	return d.AddRelation(Relation{Kind: RelUsed, Subject: activity, Object: entity, Time: t})
}

// WasGeneratedBy records that entity was generated by activity at time t.
func (d *Document) WasGeneratedBy(entity, activity QName, t time.Time) *Relation {
	return d.AddRelation(Relation{Kind: RelWasGeneratedBy, Subject: entity, Object: activity, Time: t})
}

// WasAssociatedWith records that activity was associated with agent.
func (d *Document) WasAssociatedWith(activity, agent QName) *Relation {
	return d.AddRelation(Relation{Kind: RelWasAssociatedW, Subject: activity, Object: agent})
}

// WasAttributedTo records that entity was attributed to agent.
func (d *Document) WasAttributedTo(entity, agent QName) *Relation {
	return d.AddRelation(Relation{Kind: RelWasAttributedTo, Subject: entity, Object: agent})
}

// WasDerivedFrom records that generated was derived from used.
func (d *Document) WasDerivedFrom(generated, used QName) *Relation {
	return d.AddRelation(Relation{Kind: RelWasDerivedFrom, Subject: generated, Object: used})
}

// WasInformedBy records that informed was informed by informant.
func (d *Document) WasInformedBy(informed, informant QName) *Relation {
	return d.AddRelation(Relation{Kind: RelWasInformedBy, Subject: informed, Object: informant})
}

// ActedOnBehalfOf records a delegation between two agents.
func (d *Document) ActedOnBehalfOf(delegate, responsible QName) *Relation {
	return d.AddRelation(Relation{Kind: RelActedOnBehalfOf, Subject: delegate, Object: responsible})
}

// HadMember records collection membership.
func (d *Document) HadMember(collection, member QName) *Relation {
	return d.AddRelation(Relation{Kind: RelHadMember, Subject: collection, Object: member})
}

// SpecializationOf records that specific specializes general.
func (d *Document) SpecializationOf(specific, general QName) *Relation {
	return d.AddRelation(Relation{Kind: RelSpecializationOf, Subject: specific, Object: general})
}

// RelationsOfKind returns all relations of the given kind in insertion order.
func (d *Document) RelationsOfKind(kind RelationKind) []*Relation {
	var out []*Relation
	for _, r := range d.Relations {
		if r.Kind == kind {
			out = append(out, r)
		}
	}
	return out
}

// EntityIDs returns the entity identifiers in sorted order.
func (d *Document) EntityIDs() []QName { return sortedIDs(d.Entities) }

// AgentIDs returns the agent identifiers in sorted order.
func (d *Document) AgentIDs() []QName { return sortedIDs(d.Agents) }

// ActivityIDs returns the activity identifiers in sorted order.
func (d *Document) ActivityIDs() []QName {
	ids := make([]QName, 0, len(d.Activities))
	for id := range d.Activities {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func sortedIDs(m map[QName]*Element) []QName {
	ids := make([]QName, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// HasNode reports whether id names an entity, activity or agent in d.
func (d *Document) HasNode(id QName) bool {
	if _, ok := d.Entities[id]; ok {
		return true
	}
	if _, ok := d.Activities[id]; ok {
		return true
	}
	_, ok := d.Agents[id]
	return ok
}

// NodeKind returns "entity", "activity", "agent" or "".
func (d *Document) NodeKind(id QName) string {
	if _, ok := d.Entities[id]; ok {
		return "entity"
	}
	if _, ok := d.Activities[id]; ok {
		return "activity"
	}
	if _, ok := d.Agents[id]; ok {
		return "agent"
	}
	return ""
}

// Stats summarizes document cardinalities.
type Stats struct {
	Entities   int
	Activities int
	Agents     int
	Relations  int
}

// Stats returns counts of each element class in d.
func (d *Document) Stats() Stats {
	return Stats{
		Entities:   len(d.Entities),
		Activities: len(d.Activities),
		Agents:     len(d.Agents),
		Relations:  len(d.Relations),
	}
}

// Clone returns a deep copy of the document.
func (d *Document) Clone() *Document {
	c := NewDocument()
	c.Namespaces = d.Namespaces.Clone()
	for id, e := range d.Entities {
		c.Entities[id] = &Element{ID: e.ID, Attrs: e.Attrs.Clone()}
	}
	for id, a := range d.Activities {
		c.Activities[id] = &Activity{
			Element:   Element{ID: a.ID, Attrs: a.Attrs.Clone()},
			StartTime: a.StartTime,
			EndTime:   a.EndTime,
		}
	}
	for id, g := range d.Agents {
		c.Agents[id] = &Element{ID: g.ID, Attrs: g.Attrs.Clone()}
	}
	c.Relations = make([]*Relation, len(d.Relations))
	for i, r := range d.Relations {
		cr := *r
		cr.Attrs = r.Attrs.Clone()
		c.Relations[i] = &cr
	}
	c.relSeq = d.relSeq
	return c
}
