package prov

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestJSONRoundTrip(t *testing.T) {
	d := sampleDoc(t)
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal(back) {
		t.Fatalf("round-trip mismatch:\norig: %s\nback: %s", d.ProvN(), back.ProvN())
	}
}

func TestJSONDeterministic(t *testing.T) {
	d := sampleDoc(t)
	a, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("marshaling is not deterministic")
	}
}

func TestJSONSections(t *testing.T) {
	d := sampleDoc(t)
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(data, &top); err != nil {
		t.Fatal(err)
	}
	for _, sec := range []string{"prefix", "entity", "activity", "agent", "used", "wasGeneratedBy", "wasAssociatedWith", "wasAttributedTo", "wasDerivedFrom"} {
		if _, ok := top[sec]; !ok {
			t.Errorf("missing section %q", sec)
		}
	}
	if _, ok := top["hadMember"]; ok {
		t.Error("empty relation sections must be omitted")
	}
}

func TestParseJSONRejectsGarbage(t *testing.T) {
	if _, err := ParseJSON([]byte("{not json")); err == nil {
		t.Error("garbage must fail")
	}
	if _, err := ParseJSON([]byte(`{"used": {"_:u1": {"prov:activity": "ex:a"}}}`)); err == nil {
		t.Error("relation missing endpoint must fail")
	}
}

func TestParseJSONScalarAttributes(t *testing.T) {
	src := `{
	  "prefix": {"ex": "http://example.org/"},
	  "entity": {"ex:e": {"ex:name": "foo", "ex:n": 3, "ex:f": 2.5, "ex:ok": true}}
	}`
	d, err := ParseJSON([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	attrs := d.Entities["ex:e"].Attrs
	if v := attrs["ex:name"]; v.AsString() != "foo" {
		t.Errorf("ex:name = %v", v)
	}
	if v, _ := attrs["ex:n"].AsInt(); v != 3 {
		t.Errorf("ex:n = %d", v)
	}
	if v, _ := attrs["ex:f"].AsFloat(); v != 2.5 {
		t.Errorf("ex:f = %v", v)
	}
	if v, _ := attrs["ex:ok"].AsBool(); !v {
		t.Error("ex:ok should be true")
	}
}

func TestValueRoundTripQuick(t *testing.T) {
	// Property: every generatable Value survives a JSON round trip.
	f := func(choice uint8, s string, i int64, fl float64, b bool) bool {
		var v Value
		switch choice % 5 {
		case 0:
			v = Str(s)
		case 1:
			v = Int(i)
		case 2:
			if math.IsNaN(fl) {
				fl = 0
			}
			v = Float(fl)
		case 3:
			v = Bool(b)
		case 4:
			v = Time(time.Unix(i%1_000_000_000, 0).UTC())
		}
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		var back Value
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		return v.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestValueSpecialFloats(t *testing.T) {
	for _, f := range []float64{math.Inf(1), math.Inf(-1), math.NaN()} {
		data, err := json.Marshal(Float(f))
		if err != nil {
			t.Fatal(err)
		}
		var back Value
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		got, _ := back.AsFloat()
		if math.IsNaN(f) != math.IsNaN(got) || (!math.IsNaN(f) && f != got) {
			t.Errorf("special float %v round-tripped to %v", f, got)
		}
	}
}

// randomDoc builds a random but valid document for property testing.
func randomDoc(rng *rand.Rand) *Document {
	d := NewDocument()
	nEnt := 1 + rng.Intn(8)
	nAct := 1 + rng.Intn(4)
	nAg := 1 + rng.Intn(3)
	var ents, acts, ags []QName
	for i := 0; i < nEnt; i++ {
		id := NewQName("ex", "e"+strings.Repeat("x", i%3)+string(rune('a'+i)))
		d.AddEntity(id, Attrs{"ex:v": Float(rng.NormFloat64())})
		ents = append(ents, id)
	}
	for i := 0; i < nAct; i++ {
		id := NewQName("ex", "act"+string(rune('a'+i)))
		a := d.AddActivity(id, Attrs{"ex:i": Int(rng.Int63n(1000))})
		a.StartTime = time.Unix(rng.Int63n(1e9), 0).UTC()
		a.EndTime = a.StartTime.Add(time.Duration(rng.Intn(3600)) * time.Second)
		acts = append(acts, id)
	}
	for i := 0; i < nAg; i++ {
		id := NewQName("ex", "agent"+string(rune('a'+i)))
		d.AddAgent(id, nil)
		ags = append(ags, id)
	}
	for i := 0; i < 10; i++ {
		e := ents[rng.Intn(len(ents))]
		a := acts[rng.Intn(len(acts))]
		g := ags[rng.Intn(len(ags))]
		switch rng.Intn(5) {
		case 0:
			d.Used(a, e, time.Time{})
		case 1:
			d.WasGeneratedBy(e, a, time.Unix(rng.Int63n(1e9), 0).UTC())
		case 2:
			d.WasAssociatedWith(a, g)
		case 3:
			d.WasAttributedTo(e, g)
		case 4:
			d.WasDerivedFrom(e, ents[rng.Intn(len(ents))])
		}
	}
	return d
}

func TestRandomDocRoundTripAndValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		d := randomDoc(rng)
		if _, err := d.Validate(); err != nil {
			t.Fatalf("random doc %d invalid: %v", i, err)
		}
		data, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseJSON(data)
		if err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
		if !d.Equal(back) {
			t.Fatalf("doc %d round-trip mismatch", i)
		}
		// Round trip twice: marshal(parse(marshal(d))) must be stable.
		data2, err := json.Marshal(back)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != string(data2) {
			t.Fatalf("doc %d not byte-stable across round trips", i)
		}
	}
}

func TestUnknownTypedValuePreserved(t *testing.T) {
	src := `{"entity": {"ex:e": {"ex:blob": {"$": "payload", "type": "ex:custom"}}}}`
	d, err := ParseJSON([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Entities["ex:e"].Attrs["ex:blob"].AsString(); got != "payload" {
		t.Errorf("unknown typed literal lost: %q", got)
	}
}
