package prov

import (
	"testing"
	"time"
)

func ts(sec int) time.Time { return time.Unix(int64(sec), 0).UTC() }

func TestConstraintsCleanDoc(t *testing.T) {
	d := NewDocument()
	d.AddEntity("ex:in", nil)
	d.AddEntity("ex:out", nil)
	a := d.AddActivity("ex:run", nil)
	a.StartTime, a.EndTime = ts(0), ts(100)
	d.Used("ex:run", "ex:in", ts(10))
	d.WasGeneratedBy("ex:out", "ex:run", ts(90))
	d.WasDerivedFrom("ex:out", "ex:in")
	if issues := d.CheckConstraints(); len(issues) != 0 {
		t.Fatalf("clean document flagged: %v", issues)
	}
}

func TestConstraintUseBeforeGeneration(t *testing.T) {
	d := NewDocument()
	d.AddEntity("ex:x", nil)
	d.AddActivity("ex:gen", nil)
	d.AddActivity("ex:use", nil)
	d.WasGeneratedBy("ex:x", "ex:gen", ts(50))
	d.Used("ex:use", "ex:x", ts(10)) // before generation
	issues := d.CheckConstraints()
	if len(issues) != 1 {
		t.Fatalf("issues = %v", issues)
	}
}

func TestConstraintOutsideActivityBounds(t *testing.T) {
	d := NewDocument()
	d.AddEntity("ex:x", nil)
	a := d.AddActivity("ex:run", nil)
	a.StartTime, a.EndTime = ts(100), ts(200)
	d.Used("ex:run", "ex:x", ts(50))            // before start (and before generation)
	d.WasGeneratedBy("ex:x", "ex:run", ts(300)) // after end
	issues := d.CheckConstraints()
	// Three violations: use-before-generation, use-before-activity-start,
	// generation-after-activity-end.
	if len(issues) != 3 {
		t.Fatalf("issues = %v", issues)
	}
}

func TestConstraintDerivationOrder(t *testing.T) {
	d := NewDocument()
	d.AddEntity("ex:src", nil)
	d.AddEntity("ex:derived", nil)
	d.AddActivity("ex:a1", nil)
	d.AddActivity("ex:a2", nil)
	d.WasGeneratedBy("ex:src", "ex:a1", ts(100))
	d.WasGeneratedBy("ex:derived", "ex:a2", ts(50)) // derived exists first!
	d.WasDerivedFrom("ex:derived", "ex:src")
	issues := d.CheckConstraints()
	if len(issues) != 1 {
		t.Fatalf("issues = %v", issues)
	}
}

func TestConstraintsIgnoreMissingTimes(t *testing.T) {
	d := NewDocument()
	d.AddEntity("ex:x", nil)
	d.AddActivity("ex:a", nil)
	d.Used("ex:a", "ex:x", time.Time{})
	d.WasGeneratedBy("ex:x", "ex:a", time.Time{})
	if issues := d.CheckConstraints(); len(issues) != 0 {
		t.Fatalf("untimed relations flagged: %v", issues)
	}
}

func TestCoreDocumentsSatisfyConstraints(t *testing.T) {
	// Every document sampleDoc-style must be temporally consistent.
	d := sampleDoc(t)
	if issues := d.CheckConstraints(); len(issues) != 0 {
		t.Fatalf("sample doc violates constraints: %v", issues)
	}
}
