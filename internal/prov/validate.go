package prov

import (
	"errors"
	"fmt"
)

// ValidationIssue describes one problem found by Validate.
type ValidationIssue struct {
	Severity string // "error" or "warning"
	Message  string
}

func (v ValidationIssue) String() string {
	return v.Severity + ": " + v.Message
}

// ErrInvalidDocument is wrapped by Validate when errors are present.
var ErrInvalidDocument = errors.New("prov: invalid document")

// expectedNodeKinds gives, per relation kind, the required node classes
// of (subject, object). Empty string means "entity, activity or agent".
var expectedNodeKinds = map[RelationKind][2]string{
	RelUsed:             {"activity", "entity"},
	RelWasGeneratedBy:   {"entity", "activity"},
	RelWasAssociatedW:   {"activity", "agent"},
	RelWasAttributedTo:  {"entity", "agent"},
	RelWasDerivedFrom:   {"entity", "entity"},
	RelWasInformedBy:    {"activity", "activity"},
	RelActedOnBehalfOf:  {"agent", "agent"},
	RelWasStartedBy:     {"activity", "entity"},
	RelWasEndedBy:       {"activity", "entity"},
	RelHadMember:        {"entity", "entity"},
	RelSpecializationOf: {"entity", "entity"},
	RelAlternateOf:      {"entity", "entity"},
}

// Validate checks the document for structural problems: dangling relation
// endpoints, wrong endpoint classes, invalid qualified names, activities
// whose end precedes their start, and unknown namespace prefixes. It
// returns the full issue list and a non-nil error if any issue has
// severity "error".
func (d *Document) Validate() ([]ValidationIssue, error) {
	var issues []ValidationIssue
	addErr := func(format string, args ...interface{}) {
		issues = append(issues, ValidationIssue{Severity: "error", Message: fmt.Sprintf(format, args...)})
	}
	addWarn := func(format string, args ...interface{}) {
		issues = append(issues, ValidationIssue{Severity: "warning", Message: fmt.Sprintf(format, args...)})
	}

	checkQName := func(what string, q QName) {
		if !q.Valid() {
			addErr("%s has invalid qualified name %q", what, q)
			return
		}
		if _, ok := d.Namespaces.Lookup(q.Prefix()); !ok {
			addWarn("%s uses unregistered namespace prefix %q", what, q.Prefix())
		}
	}

	// Element checks iterate the maps directly: the overwhelmingly
	// common all-valid document then allocates nothing, at the cost of
	// unordered issues when elements ARE broken (relation issues below
	// keep their slice order; nothing relies on element-issue order).
	for id := range d.Entities {
		checkQName("entity", id)
	}
	for id := range d.Agents {
		checkQName("agent", id)
	}
	for id, a := range d.Activities {
		checkQName("activity", id)
		if !a.StartTime.IsZero() && !a.EndTime.IsZero() && a.EndTime.Before(a.StartTime) {
			addErr("activity %s ends (%s) before it starts (%s)", id, a.EndTime, a.StartTime)
		}
	}

	for _, r := range d.Relations {
		want, ok := expectedNodeKinds[r.Kind]
		if !ok {
			addErr("relation %s has unsupported kind %q", r.ID, r.Kind)
			continue
		}
		if !d.HasNode(r.Subject) {
			addErr("relation %s (%s) references missing subject %s", r.ID, r.Kind, r.Subject)
		} else if got := d.NodeKind(r.Subject); want[0] != "" && got != want[0] {
			addErr("relation %s (%s) subject %s is a %s, want %s", r.ID, r.Kind, r.Subject, got, want[0])
		}
		if !d.HasNode(r.Object) {
			addErr("relation %s (%s) references missing object %s", r.ID, r.Kind, r.Object)
		} else if got := d.NodeKind(r.Object); want[1] != "" && got != want[1] {
			addErr("relation %s (%s) object %s is a %s, want %s", r.ID, r.Kind, r.Object, got, want[1])
		}
	}

	for _, iss := range issues {
		if iss.Severity == "error" {
			return issues, fmt.Errorf("%w: %d issue(s), first: %s", ErrInvalidDocument, len(issues), issues[0].Message)
		}
	}
	return issues, nil
}

// MustValidate panics when the document is invalid; intended for tests
// and examples where an invalid document is a programming error.
func (d *Document) MustValidate() {
	if _, err := d.Validate(); err != nil {
		panic(err)
	}
}
