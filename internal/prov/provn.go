package prov

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// WriteProvN renders the document in PROV-N (the human-readable W3C
// provenance notation). Output is deterministic: elements sorted by id,
// relations in insertion order.
func (d *Document) WriteProvN(sb *strings.Builder) {
	sb.WriteString("document\n")
	for _, p := range d.Namespaces.Prefixes() {
		uri, _ := d.Namespaces.Lookup(p)
		fmt.Fprintf(sb, "  prefix %s <%s>\n", p, uri)
	}
	sb.WriteByte('\n')

	for _, id := range d.EntityIDs() {
		e := d.Entities[id]
		fmt.Fprintf(sb, "  entity(%s%s)\n", id, provnAttrs(e.Attrs))
	}
	for _, id := range d.ActivityIDs() {
		a := d.Activities[id]
		fmt.Fprintf(sb, "  activity(%s, %s, %s%s)\n",
			id, provnTime(a.StartTime), provnTime(a.EndTime), provnAttrs(a.Attrs))
	}
	for _, id := range d.AgentIDs() {
		g := d.Agents[id]
		fmt.Fprintf(sb, "  agent(%s%s)\n", id, provnAttrs(g.Attrs))
	}

	for _, r := range d.Relations {
		switch r.Kind {
		case RelUsed, RelWasGeneratedBy, RelWasStartedBy, RelWasEndedBy:
			fmt.Fprintf(sb, "  %s(%s; %s, %s, %s%s)\n",
				provnName(r.Kind), r.ID, r.Subject, r.Object, provnTime(r.Time), provnAttrs(r.Attrs))
		default:
			fmt.Fprintf(sb, "  %s(%s; %s, %s%s)\n",
				provnName(r.Kind), r.ID, r.Subject, r.Object, provnAttrs(r.Attrs))
		}
	}
	sb.WriteString("endDocument\n")
}

// ProvN returns the PROV-N rendering of the document.
func (d *Document) ProvN() string {
	var sb strings.Builder
	d.WriteProvN(&sb)
	return sb.String()
}

func provnName(kind RelationKind) string {
	// PROV-N uses the same camelCase names as PROV-JSON sections.
	return string(kind)
}

func provnTime(t time.Time) string {
	if t.IsZero() {
		return "-"
	}
	return t.UTC().Format(time.RFC3339Nano)
}

func provnAttrs(a Attrs) string {
	if len(a) == 0 {
		return ""
	}
	keys := a.SortedKeys()
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%s", k, provnValue(a[k])))
	}
	sort.Strings(parts)
	return ", [" + strings.Join(parts, ", ") + "]"
}

func provnValue(v Value) string {
	switch v.Kind() {
	case KindString:
		return fmt.Sprintf("%q", v.AsString())
	case KindInt:
		return fmt.Sprintf("%q %%%% xsd:long", v.AsString())
	case KindFloat:
		return fmt.Sprintf("%q %%%% xsd:double", v.AsString())
	case KindBool:
		return fmt.Sprintf("%q %%%% xsd:boolean", v.AsString())
	case KindTime:
		return fmt.Sprintf("%q %%%% xsd:dateTime", v.AsString())
	case KindRef:
		return "'" + v.AsString() + "'"
	}
	return "\"\""
}
