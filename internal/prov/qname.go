// Package prov implements the W3C PROV data model (PROV-DM) with
// PROV-JSON and PROV-N serializations, document validation, merging and
// graph traversal. It is the foundation of the yProv4ML provenance
// producer and of the yProv service (provstore/provservice).
//
// The subset implemented covers everything the yProv4ML data model needs:
// entities, activities and agents with typed attributes, and the core
// relations used / wasGeneratedBy / wasAssociatedWith / wasAttributedTo /
// wasDerivedFrom / wasInformedBy / actedOnBehalfOf / wasStartedBy /
// wasEndedBy / hadMember / specializationOf / alternateOf.
package prov

import (
	"fmt"
	"sort"
	"strings"
)

// Well-known namespace URIs registered in every new Document.
const (
	NSProv    = "http://www.w3.org/ns/prov#"
	NSXSD     = "http://www.w3.org/2001/XMLSchema#"
	NSProvML  = "http://example.org/ns/provml#"
	NSYProv   = "http://yprov.disi.unitn.it/ns/yprov#"
	NSDefault = "http://example.org/ns/default#"
)

// QName is a qualified name, i.e. "prefix:local". The zero QName is invalid.
type QName string

// NewQName builds a qualified name from a prefix and local part.
func NewQName(prefix, local string) QName {
	return QName(prefix + ":" + local)
}

// Prefix returns the namespace prefix of q, or "" if q has no colon.
func (q QName) Prefix() string {
	if i := strings.IndexByte(string(q), ':'); i >= 0 {
		return string(q)[:i]
	}
	return ""
}

// Local returns the local part of q (everything after the first colon).
func (q QName) Local() string {
	if i := strings.IndexByte(string(q), ':'); i >= 0 {
		return string(q)[i+1:]
	}
	return string(q)
}

// Valid reports whether q has a non-empty prefix and local part.
func (q QName) Valid() bool {
	i := strings.IndexByte(string(q), ':')
	return i > 0 && i < len(q)-1
}

func (q QName) String() string { return string(q) }

// NamespaceSet maps prefixes to namespace URIs for one document.
type NamespaceSet struct {
	byPrefix map[string]string
}

// NewNamespaceSet returns a set pre-populated with the prov, xsd, provml
// and yprov namespaces.
func NewNamespaceSet() *NamespaceSet {
	ns := &NamespaceSet{byPrefix: make(map[string]string)}
	ns.Register("prov", NSProv)
	ns.Register("xsd", NSXSD)
	ns.Register("provml", NSProvML)
	ns.Register("yprov", NSYProv)
	ns.Register("ex", NSDefault)
	return ns
}

// Register binds prefix to uri, replacing any previous binding.
func (n *NamespaceSet) Register(prefix, uri string) {
	n.byPrefix[prefix] = uri
}

// Lookup returns the URI bound to prefix.
func (n *NamespaceSet) Lookup(prefix string) (string, bool) {
	uri, ok := n.byPrefix[prefix]
	return uri, ok
}

// Prefixes returns all registered prefixes in sorted order.
func (n *NamespaceSet) Prefixes() []string {
	out := make([]string, 0, len(n.byPrefix))
	for p := range n.byPrefix {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Expand resolves a QName to its full URI form.
func (n *NamespaceSet) Expand(q QName) (string, error) {
	uri, ok := n.byPrefix[q.Prefix()]
	if !ok {
		return "", fmt.Errorf("prov: unknown namespace prefix %q in %q", q.Prefix(), q)
	}
	return uri + q.Local(), nil
}

// Clone returns a deep copy of the namespace set.
func (n *NamespaceSet) Clone() *NamespaceSet {
	c := &NamespaceSet{byPrefix: make(map[string]string, len(n.byPrefix))}
	for k, v := range n.byPrefix {
		c.byPrefix[k] = v
	}
	return c
}

// Merge adds all bindings from other that do not conflict; conflicting
// bindings (same prefix, different URI) are reported as an error.
func (n *NamespaceSet) Merge(other *NamespaceSet) error {
	for p, uri := range other.byPrefix {
		if existing, ok := n.byPrefix[p]; ok && existing != uri {
			return fmt.Errorf("prov: namespace conflict for prefix %q: %q vs %q", p, existing, uri)
		}
		n.byPrefix[p] = uri
	}
	return nil
}
