package prov

import (
	"testing"
	"time"
)

func sampleDoc(t testing.TB) *Document {
	t.Helper()
	d := NewDocument()
	d.AddEntity("ex:dataset", Attrs{"prov:type": Str("provml:Dataset"), "ex:patches": Int(800000)})
	d.AddEntity("ex:model", Attrs{"prov:type": Str("provml:Model"), "ex:params": Int(100_000_000)})
	a := d.AddActivity("ex:train_run", Attrs{"prov:type": Str("provml:RunExecution")})
	a.StartTime = time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC)
	a.EndTime = a.StartTime.Add(2 * time.Hour)
	d.AddAgent("ex:researcher", Attrs{"prov:type": Str("prov:Person")})
	d.Used("ex:train_run", "ex:dataset", a.StartTime)
	d.WasGeneratedBy("ex:model", "ex:train_run", a.EndTime)
	d.WasAssociatedWith("ex:train_run", "ex:researcher")
	d.WasAttributedTo("ex:model", "ex:researcher")
	d.WasDerivedFrom("ex:model", "ex:dataset")
	return d
}

func TestAddEntityIdempotentMerge(t *testing.T) {
	d := NewDocument()
	d.AddEntity("ex:a", Attrs{"ex:x": Int(1)})
	d.AddEntity("ex:a", Attrs{"ex:y": Int(2)})
	e := d.Entities["ex:a"]
	if len(e.Attrs) != 2 {
		t.Fatalf("attrs = %v, want merged x and y", e.Attrs)
	}
	if got, _ := e.Attrs["ex:x"].AsInt(); got != 1 {
		t.Errorf("ex:x = %d, want 1", got)
	}
}

func TestAddEntityOverwriteWins(t *testing.T) {
	d := NewDocument()
	d.AddEntity("ex:a", Attrs{"ex:x": Int(1)})
	d.AddEntity("ex:a", Attrs{"ex:x": Int(9)})
	if got, _ := d.Entities["ex:a"].Attrs["ex:x"].AsInt(); got != 9 {
		t.Errorf("ex:x = %d, want latest value 9", got)
	}
}

func TestRelationIDsUnique(t *testing.T) {
	d := sampleDoc(t)
	seen := map[string]bool{}
	for _, r := range d.Relations {
		if seen[r.ID] {
			t.Fatalf("duplicate relation id %q", r.ID)
		}
		seen[r.ID] = true
	}
}

func TestStats(t *testing.T) {
	d := sampleDoc(t)
	s := d.Stats()
	if s.Entities != 2 || s.Activities != 1 || s.Agents != 1 || s.Relations != 5 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestNodeKind(t *testing.T) {
	d := sampleDoc(t)
	cases := map[QName]string{
		"ex:dataset":    "entity",
		"ex:train_run":  "activity",
		"ex:researcher": "agent",
		"ex:nope":       "",
	}
	for id, want := range cases {
		if got := d.NodeKind(id); got != want {
			t.Errorf("NodeKind(%s) = %q, want %q", id, got, want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := sampleDoc(t)
	c := d.Clone()
	c.AddEntity("ex:extra", nil)
	c.Entities["ex:dataset"].Attrs["ex:patches"] = Int(1)
	if _, ok := d.Entities["ex:extra"]; ok {
		t.Error("clone shares entity map with original")
	}
	if got, _ := d.Entities["ex:dataset"].Attrs["ex:patches"].AsInt(); got != 800000 {
		t.Error("clone shares attribute maps with original")
	}
	if !d.Equal(sampleDoc(t)) {
		t.Error("original mutated by clone edits")
	}
}

func TestRelationsOfKind(t *testing.T) {
	d := sampleDoc(t)
	if got := len(d.RelationsOfKind(RelUsed)); got != 1 {
		t.Errorf("used count = %d, want 1", got)
	}
	if got := len(d.RelationsOfKind(RelHadMember)); got != 0 {
		t.Errorf("hadMember count = %d, want 0", got)
	}
}

func TestQName(t *testing.T) {
	q := NewQName("ex", "model")
	if q.Prefix() != "ex" || q.Local() != "model" || !q.Valid() {
		t.Fatalf("bad qname decomposition: %q -> %q %q", q, q.Prefix(), q.Local())
	}
	if QName("noprefix").Valid() {
		t.Error("QName without colon must be invalid")
	}
	if QName(":x").Valid() || QName("x:").Valid() {
		t.Error("QName with empty prefix or local must be invalid")
	}
}

func TestNamespaceExpand(t *testing.T) {
	ns := NewNamespaceSet()
	uri, err := ns.Expand("prov:Entity")
	if err != nil {
		t.Fatal(err)
	}
	if uri != NSProv+"Entity" {
		t.Errorf("expand = %q", uri)
	}
	if _, err := ns.Expand("zzz:x"); err == nil {
		t.Error("expand of unknown prefix should fail")
	}
}

func TestNamespaceMergeConflict(t *testing.T) {
	a := NewNamespaceSet()
	b := NewNamespaceSet()
	b.Register("ex", "http://different/")
	if err := a.Merge(b); err == nil {
		t.Fatal("conflicting merge should error")
	}
}

func TestActivityTimesSurviveMerge(t *testing.T) {
	d := NewDocument()
	a := d.AddActivity("ex:a", nil)
	start := time.Date(2025, 6, 1, 12, 0, 0, 0, time.UTC)
	a.StartTime = start
	d.AddActivity("ex:a", Attrs{"ex:k": Str("v")})
	if !d.Activities["ex:a"].StartTime.Equal(start) {
		t.Error("re-adding an activity must not clear its start time")
	}
}
