package prov

import (
	"bytes"
	"testing"
	"time"
)

// fuzzSeedDocs builds a spread of documents covering every wire shape:
// all value kinds, attr-less elements, activity times, relation times,
// every relation kind, unicode ids, and empty documents.
func fuzzSeedDocs() []*Document {
	empty := NewDocument()

	kitchen := NewDocument()
	kitchen.Namespaces.Register("ex", "http://example.org/")
	kitchen.AddEntity("ex:e1", Attrs{
		"s": Str("hello"), "i": Int(-42), "f": Float(3.5),
		"b": Bool(true), "t": Time(time.Date(2025, 6, 1, 2, 3, 4, 5000, time.UTC)),
		"r": Ref("ex:other"),
	})
	kitchen.AddEntity("ex:e2", nil)
	act := kitchen.AddActivity("ex:a1", Attrs{"prov:type": Str("run")})
	act.StartTime = time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)
	act.EndTime = time.Date(2025, 6, 2, 0, 0, 0, 0, time.UTC)
	kitchen.AddAgent("ex:u", Attrs{"provml:name": Str("üñí©ode")})
	kitchen.WasGeneratedBy("ex:e1", "ex:a1", time.Date(2025, 6, 1, 12, 0, 0, 0, time.UTC))
	kitchen.Used("ex:a1", "ex:e2", time.Time{})
	kitchen.WasAssociatedWith("ex:a1", "ex:u")
	kitchen.WasDerivedFrom("ex:e1", "ex:e2")

	rels := NewDocument()
	rels.AddEntity("ex:e", nil)
	rels.AddEntity("ex:e2", nil)
	rels.AddActivity("ex:a", nil)
	rels.AddActivity("ex:a2", nil)
	rels.AddAgent("ex:g", nil)
	rels.AddAgent("ex:g2", nil)
	for _, r := range []Relation{
		{Kind: RelUsed, Subject: "ex:a", Object: "ex:e"},
		{Kind: RelWasGeneratedBy, Subject: "ex:e", Object: "ex:a"},
		{Kind: RelWasAssociatedW, Subject: "ex:a", Object: "ex:g"},
		{Kind: RelWasAttributedTo, Subject: "ex:e", Object: "ex:g"},
		{Kind: RelWasDerivedFrom, Subject: "ex:e", Object: "ex:e2"},
		{Kind: RelWasInformedBy, Subject: "ex:a", Object: "ex:a2"},
		{Kind: RelActedOnBehalfOf, Subject: "ex:g", Object: "ex:g2"},
		{Kind: RelWasStartedBy, Subject: "ex:a", Object: "ex:e"},
		{Kind: RelWasEndedBy, Subject: "ex:a", Object: "ex:e"},
		{Kind: RelHadMember, Subject: "ex:e", Object: "ex:e2"},
		{Kind: RelSpecializationOf, Subject: "ex:e", Object: "ex:e2"},
		{Kind: RelAlternateOf, Subject: "ex:e", Object: "ex:e2"},
	} {
		rels.AddRelation(r)
	}

	return []*Document{empty, kitchen, rels}
}

// FuzzBinaryDocRoundTrip feeds PROV-JSON through the binary codec and
// demands byte-identical canonical JSON back: ParseJSON -> AppendBinary
// -> ParseBinary -> MarshalJSON must equal the direct MarshalJSON.
func FuzzBinaryDocRoundTrip(f *testing.F) {
	for _, d := range fuzzSeedDocs() {
		j, err := d.MarshalJSON()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(j)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := ParseJSON(data)
		if err != nil {
			t.Skip() // not a valid document: nothing to round-trip
		}
		want, err := doc.MarshalJSON()
		if err != nil {
			t.Skip()
		}
		bin := AppendBinary(nil, doc)
		back, err := ParseBinary(bin)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v\nencoding: %x", err, bin)
		}
		got, err := back.MarshalJSON()
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("round-trip mismatch:\n got %s\nwant %s", got, want)
		}
	})
}

// FuzzBinaryDocDecode throws arbitrary bytes at the decoder: it must
// never panic, and anything it does accept must re-encode and re-decode
// to the same canonical JSON (decode is a fixpoint, so corrupt input
// can never silently morph a document).
func FuzzBinaryDocDecode(f *testing.F) {
	for _, d := range fuzzSeedDocs() {
		f.Add(AppendBinary(nil, d))
	}
	// Hostile shapes: wrong tag, truncations, absurd counts.
	f.Add([]byte{})
	f.Add([]byte{BinaryDocTag})
	f.Add([]byte{0x02, 0x00})
	f.Add([]byte{BinaryDocTag, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F})
	kitchen := AppendBinary(nil, fuzzSeedDocs()[1])
	for _, cut := range []int{1, 2, len(kitchen) / 2, len(kitchen) - 1} {
		if cut < len(kitchen) {
			f.Add(kitchen[:cut])
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := ParseBinary(data)
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		j1, err := doc.MarshalJSON()
		if err != nil {
			t.Fatalf("accepted document fails to marshal: %v", err)
		}
		again, err := ParseBinary(AppendBinary(nil, doc))
		if err != nil {
			t.Fatalf("re-decode of accepted document failed: %v", err)
		}
		j2, err := again.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(j1, j2) {
			t.Fatalf("decode not a fixpoint:\n first %s\nsecond %s", j1, j2)
		}
	})
}
