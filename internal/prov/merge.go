package prov

import "fmt"

// Merge folds other into d: namespaces are united (conflicts are errors),
// elements with the same id have their attributes merged (other wins on
// key collisions), and other's relations are appended, skipping exact
// duplicates (same kind, subject, object and time).
func (d *Document) Merge(other *Document) error {
	if err := d.Namespaces.Merge(other.Namespaces); err != nil {
		return fmt.Errorf("prov: merge: %w", err)
	}
	for _, id := range other.EntityIDs() {
		d.AddEntity(id, other.Entities[id].Attrs)
	}
	for _, id := range other.AgentIDs() {
		d.AddAgent(id, other.Agents[id].Attrs)
	}
	for _, id := range other.ActivityIDs() {
		oa := other.Activities[id]
		a := d.AddActivity(id, oa.Attrs)
		if a.StartTime.IsZero() {
			a.StartTime = oa.StartTime
		}
		if a.EndTime.IsZero() {
			a.EndTime = oa.EndTime
		}
	}

	type relKey struct {
		kind     RelationKind
		subj, ob QName
		unix     int64
	}
	seen := make(map[relKey]bool, len(d.Relations))
	for _, r := range d.Relations {
		seen[relKey{r.Kind, r.Subject, r.Object, r.Time.UnixNano()}] = true
	}
	for _, r := range other.Relations {
		k := relKey{r.Kind, r.Subject, r.Object, r.Time.UnixNano()}
		if seen[k] {
			continue
		}
		seen[k] = true
		d.AddRelation(Relation{Kind: r.Kind, Subject: r.Subject, Object: r.Object, Time: r.Time, Attrs: r.Attrs.Clone()})
	}
	return nil
}

// Equal reports whether two documents contain the same elements and
// relations (ignoring relation identifiers and insertion order).
func (d *Document) Equal(other *Document) bool {
	if len(d.Entities) != len(other.Entities) ||
		len(d.Activities) != len(other.Activities) ||
		len(d.Agents) != len(other.Agents) ||
		len(d.Relations) != len(other.Relations) {
		return false
	}
	for id, e := range d.Entities {
		oe, ok := other.Entities[id]
		if !ok || !attrsEqual(e.Attrs, oe.Attrs) {
			return false
		}
	}
	for id, g := range d.Agents {
		og, ok := other.Agents[id]
		if !ok || !attrsEqual(g.Attrs, og.Attrs) {
			return false
		}
	}
	for id, a := range d.Activities {
		oa, ok := other.Activities[id]
		if !ok || !attrsEqual(a.Attrs, oa.Attrs) ||
			!a.StartTime.Equal(oa.StartTime) || !a.EndTime.Equal(oa.EndTime) {
			return false
		}
	}
	// Relations: compare as multisets keyed by (kind, subject, object, time).
	count := make(map[string]int, len(d.Relations))
	key := func(r *Relation) string {
		return fmt.Sprintf("%s|%s|%s|%d", r.Kind, r.Subject, r.Object, r.Time.UnixNano())
	}
	for _, r := range d.Relations {
		count[key(r)]++
	}
	for _, r := range other.Relations {
		count[key(r)]--
		if count[key(r)] < 0 {
			return false
		}
	}
	return true
}

func attrsEqual(a, b Attrs) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		bv, ok := b[k]
		if !ok || !v.Equal(bv) {
			return false
		}
	}
	return true
}
