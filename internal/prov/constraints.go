package prov

import "fmt"

// CheckConstraints applies a subset of the W3C PROV-CONSTRAINTS
// ordering rules that are decidable on our documents:
//
//   - generation-before-usage: an entity must not be used before it was
//     generated (within the same document).
//   - usage/generation within activity bounds: a relation timestamp on
//     used/wasGeneratedBy must fall inside its activity's [start, end]
//     interval when both are known.
//   - derivation consistency: if e2 wasDerivedFrom e1 and both have
//     generation times, gen(e2) must not precede gen(e1).
//
// Violations are returned as warnings (PROV documents are frequently
// partial; the paper's producers tolerate missing times), so callers
// decide whether to reject.
func (d *Document) CheckConstraints() []ValidationIssue {
	var issues []ValidationIssue
	warn := func(format string, args ...interface{}) {
		issues = append(issues, ValidationIssue{Severity: "warning", Message: fmt.Sprintf(format, args...)})
	}

	// First generation time per entity.
	genTime := map[QName][]*Relation{}
	for _, r := range d.Relations {
		if r.Kind == RelWasGeneratedBy && !r.Time.IsZero() {
			genTime[r.Subject] = append(genTime[r.Subject], r)
		}
	}
	earliestGen := func(e QName) (*Relation, bool) {
		list := genTime[e]
		if len(list) == 0 {
			return nil, false
		}
		best := list[0]
		for _, r := range list[1:] {
			if r.Time.Before(best.Time) {
				best = r
			}
		}
		return best, true
	}

	for _, r := range d.Relations {
		switch r.Kind {
		case RelUsed:
			if r.Time.IsZero() {
				continue
			}
			if gen, ok := earliestGen(r.Object); ok && r.Time.Before(gen.Time) {
				warn("entity %s used at %s before its generation at %s",
					r.Object, r.Time.Format("2006-01-02T15:04:05.000"), gen.Time.Format("2006-01-02T15:04:05.000"))
			}
			if a, ok := d.Activities[r.Subject]; ok {
				if !a.StartTime.IsZero() && r.Time.Before(a.StartTime) {
					warn("activity %s uses %s before its own start", r.Subject, r.Object)
				}
				if !a.EndTime.IsZero() && r.Time.After(a.EndTime) {
					warn("activity %s uses %s after its own end", r.Subject, r.Object)
				}
			}
		case RelWasGeneratedBy:
			if r.Time.IsZero() {
				continue
			}
			if a, ok := d.Activities[r.Object]; ok {
				if !a.StartTime.IsZero() && r.Time.Before(a.StartTime) {
					warn("entity %s generated before activity %s started", r.Subject, r.Object)
				}
				if !a.EndTime.IsZero() && r.Time.After(a.EndTime) {
					warn("entity %s generated after activity %s ended", r.Subject, r.Object)
				}
			}
		case RelWasDerivedFrom:
			g2, ok2 := earliestGen(r.Subject)
			g1, ok1 := earliestGen(r.Object)
			if ok1 && ok2 && g2.Time.Before(g1.Time) {
				warn("derived entity %s generated (%s) before its source %s (%s)",
					r.Subject, g2.Time.Format("15:04:05"), r.Object, g1.Time.Format("15:04:05"))
			}
		}
	}
	return issues
}
