package prov

import (
	"strings"
	"testing"
	"time"
)

// chainDoc builds raw -> prep(activity) -> curated -> train(activity) -> model.
func chainDoc() *Document {
	d := NewDocument()
	d.AddEntity("ex:raw", nil)
	d.AddEntity("ex:curated", nil)
	d.AddEntity("ex:model", nil)
	d.AddActivity("ex:prep", nil)
	d.AddActivity("ex:train", nil)
	d.Used("ex:prep", "ex:raw", time.Time{})
	d.WasGeneratedBy("ex:curated", "ex:prep", time.Time{})
	d.Used("ex:train", "ex:curated", time.Time{})
	d.WasGeneratedBy("ex:model", "ex:train", time.Time{})
	return d
}

func TestAncestors(t *testing.T) {
	d := chainDoc()
	anc := d.Ancestors("ex:model")
	want := map[QName]bool{"ex:train": true, "ex:curated": true, "ex:prep": true, "ex:raw": true}
	if len(anc) != len(want) {
		t.Fatalf("ancestors = %v", anc)
	}
	for _, a := range anc {
		if !want[a] {
			t.Errorf("unexpected ancestor %s", a)
		}
	}
}

func TestDescendants(t *testing.T) {
	d := chainDoc()
	desc := d.Descendants("ex:raw")
	want := map[QName]bool{"ex:prep": true, "ex:curated": true, "ex:train": true, "ex:model": true}
	if len(desc) != len(want) {
		t.Fatalf("descendants = %v", desc)
	}
}

func TestAncestorsOfRootEmpty(t *testing.T) {
	d := chainDoc()
	if anc := d.Ancestors("ex:raw"); len(anc) != 0 {
		t.Errorf("raw should have no ancestors, got %v", anc)
	}
}

func TestPath(t *testing.T) {
	d := chainDoc()
	p := d.Path("ex:model", "ex:raw")
	if len(p) != 5 || p[0] != "ex:model" || p[4] != "ex:raw" {
		t.Fatalf("path = %v", p)
	}
	if d.Path("ex:raw", "ex:model") != nil {
		t.Error("no forward path should exist from raw to model")
	}
	if p := d.Path("ex:raw", "ex:raw"); len(p) != 1 {
		t.Errorf("self path = %v", p)
	}
}

func TestSubgraph(t *testing.T) {
	d := chainDoc()
	sub := d.Subgraph([]QName{"ex:model", "ex:train"})
	if len(sub.Entities) != 1 || len(sub.Activities) != 1 {
		t.Fatalf("subgraph stats = %+v", sub.Stats())
	}
	if len(sub.Relations) != 1 || sub.Relations[0].Kind != RelWasGeneratedBy {
		t.Fatalf("subgraph relations = %v", sub.Relations)
	}
	if _, err := sub.Validate(); err != nil {
		t.Errorf("subgraph must be valid: %v", err)
	}
}

func TestNeighborhood(t *testing.T) {
	d := chainDoc()
	n1 := d.Neighborhood("ex:curated", 1)
	// 1 hop from curated: prep (generatedBy) and train (used).
	if n1.Stats().Entities != 1 || n1.Stats().Activities != 2 {
		t.Fatalf("1-hop stats = %+v", n1.Stats())
	}
	nAll := d.Neighborhood("ex:curated", 10)
	if nAll.Stats().Entities != 3 || nAll.Stats().Activities != 2 {
		t.Fatalf("full neighborhood stats = %+v", nAll.Stats())
	}
}

func TestCycleSafety(t *testing.T) {
	d := NewDocument()
	d.AddEntity("ex:a", nil)
	d.AddEntity("ex:b", nil)
	d.WasDerivedFrom("ex:a", "ex:b")
	d.WasDerivedFrom("ex:b", "ex:a") // cycle
	if got := len(d.Ancestors("ex:a")); got != 1 {
		t.Errorf("cyclic ancestors = %d, want 1", got)
	}
}

func TestMergeDedupes(t *testing.T) {
	a := chainDoc()
	b := chainDoc()
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := len(a.Relations); got != 4 {
		t.Errorf("merge duplicated relations: %d, want 4", got)
	}
	if !a.Equal(chainDoc()) {
		t.Error("merging an identical doc must be a no-op")
	}
}

func TestMergeAddsNew(t *testing.T) {
	a := chainDoc()
	b := NewDocument()
	b.AddEntity("ex:report", nil)
	b.AddActivity("ex:eval", nil)
	b.Used("ex:eval", "ex:report", time.Time{})
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if !a.HasNode("ex:report") || len(a.Relations) != 5 {
		t.Fatalf("merge lost additions: %+v", a.Stats())
	}
}

func TestValidateDangling(t *testing.T) {
	d := NewDocument()
	d.AddActivity("ex:a", nil)
	d.Used("ex:a", "ex:missing", time.Time{})
	if _, err := d.Validate(); err == nil {
		t.Fatal("dangling endpoint must be an error")
	}
}

func TestValidateWrongClass(t *testing.T) {
	d := NewDocument()
	d.AddEntity("ex:e", nil)
	d.AddEntity("ex:e2", nil)
	// used requires an activity subject; ex:e is an entity.
	d.Used("ex:e", "ex:e2", time.Time{})
	if _, err := d.Validate(); err == nil {
		t.Fatal("wrong endpoint class must be an error")
	}
}

func TestValidateTimeOrder(t *testing.T) {
	d := NewDocument()
	a := d.AddActivity("ex:a", nil)
	a.StartTime = time.Date(2025, 1, 2, 0, 0, 0, 0, time.UTC)
	a.EndTime = time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC)
	if _, err := d.Validate(); err == nil {
		t.Fatal("end before start must be an error")
	}
}

func TestValidateWarningsOnly(t *testing.T) {
	d := NewDocument()
	d.AddEntity("weird:e", nil) // unregistered prefix -> warning only
	issues, err := d.Validate()
	if err != nil {
		t.Fatalf("warnings must not fail validation: %v", err)
	}
	if len(issues) == 0 {
		t.Error("expected a warning for unregistered prefix")
	}
}

func TestProvNOutput(t *testing.T) {
	d := chainDoc()
	n := d.ProvN()
	for _, want := range []string{"document", "endDocument", "entity(ex:raw)", "used(", "wasGeneratedBy("} {
		if !strings.Contains(n, want) {
			t.Errorf("PROV-N missing %q in:\n%s", want, n)
		}
	}
}
