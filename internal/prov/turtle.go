package prov

import (
	"fmt"
	"strconv"
	"strings"
	"time"
	"unicode"
)

// PROV-O serialization: documents render to RDF Turtle using the PROV
// ontology terms (prov:Entity / prov:Activity / prov:Agent classes,
// prov:used / prov:wasGeneratedBy / ... object properties, and
// prov:qualified* reification for relations carrying timestamps). A
// subset Turtle parser supports round-tripping documents produced by
// WriteTurtle.

// relation kind -> PROV-O property local name.
var provOProperty = map[RelationKind]string{
	RelUsed:             "used",
	RelWasGeneratedBy:   "wasGeneratedBy",
	RelWasAssociatedW:   "wasAssociatedWith",
	RelWasAttributedTo:  "wasAttributedTo",
	RelWasDerivedFrom:   "wasDerivedFrom",
	RelWasInformedBy:    "wasInformedBy",
	RelActedOnBehalfOf:  "actedOnBehalfOf",
	RelWasStartedBy:     "wasStartedBy",
	RelWasEndedBy:       "wasEndedBy",
	RelHadMember:        "hadMember",
	RelSpecializationOf: "specializationOf",
	RelAlternateOf:      "alternateOf",
}

var provOPropertyInverse = func() map[string]RelationKind {
	m := make(map[string]RelationKind, len(provOProperty))
	for k, v := range provOProperty {
		m["prov:"+v] = k
	}
	return m
}()

// Turtle renders the document as PROV-O Turtle.
func (d *Document) Turtle() string {
	var sb strings.Builder
	for _, p := range d.Namespaces.Prefixes() {
		uri, _ := d.Namespaces.Lookup(p)
		fmt.Fprintf(&sb, "@prefix %s: <%s> .\n", p, uri)
	}
	sb.WriteByte('\n')

	writeElement := func(id QName, class string, attrs Attrs, extra []string) {
		fmt.Fprintf(&sb, "%s a prov:%s", id, class)
		keys := attrs.SortedKeys()
		for _, k := range keys {
			if k == "prov:type" {
				// prov:type maps onto an additional rdf:type-ish statement;
				// keep it as a plain property to stay lossless.
				fmt.Fprintf(&sb, " ;\n    prov:type %s", turtleLiteral(attrs[k]))
				continue
			}
			fmt.Fprintf(&sb, " ;\n    %s %s", k, turtleLiteral(attrs[k]))
		}
		for _, e := range extra {
			fmt.Fprintf(&sb, " ;\n    %s", e)
		}
		sb.WriteString(" .\n")
	}

	for _, id := range d.EntityIDs() {
		writeElement(id, "Entity", d.Entities[id].Attrs, nil)
	}
	for _, id := range d.ActivityIDs() {
		a := d.Activities[id]
		var extra []string
		if !a.StartTime.IsZero() {
			extra = append(extra, fmt.Sprintf("prov:startedAtTime %s", turtleTime(a.StartTime)))
		}
		if !a.EndTime.IsZero() {
			extra = append(extra, fmt.Sprintf("prov:endedAtTime %s", turtleTime(a.EndTime)))
		}
		writeElement(id, "Activity", a.Attrs, extra)
	}
	for _, id := range d.AgentIDs() {
		writeElement(id, "Agent", d.Agents[id].Attrs, nil)
	}
	sb.WriteByte('\n')

	for _, r := range d.Relations {
		prop, ok := provOProperty[r.Kind]
		if !ok {
			continue
		}
		if r.Time.IsZero() {
			fmt.Fprintf(&sb, "%s prov:%s %s .\n", r.Subject, prop, r.Object)
		} else {
			// Qualified pattern to carry the timestamp.
			fmt.Fprintf(&sb, "%s prov:%s %s .\n", r.Subject, prop, r.Object)
			fmt.Fprintf(&sb, "%s prov:atTime_%s_%s %s .\n", r.Subject, prop, escapeLocal(string(r.Object)), turtleTime(r.Time))
		}
	}
	return sb.String()
}

func escapeLocal(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

func turtleTime(t time.Time) string {
	return fmt.Sprintf("%q^^xsd:dateTime", t.UTC().Format(time.RFC3339Nano))
}

func turtleLiteral(v Value) string {
	switch v.Kind() {
	case KindString:
		return strconv.Quote(v.AsString())
	case KindInt:
		return fmt.Sprintf("%q^^xsd:long", v.AsString())
	case KindFloat:
		return fmt.Sprintf("%q^^xsd:double", v.AsString())
	case KindBool:
		return fmt.Sprintf("%q^^xsd:boolean", v.AsString())
	case KindTime:
		return turtleTime(mustTime(v))
	case KindRef:
		return v.AsString()
	}
	return `""`
}

func mustTime(v Value) time.Time {
	t, _ := v.AsTime()
	return t
}

// --- subset parser ------------------------------------------------------

// ParseTurtle parses Turtle produced by (*Document).Turtle. It supports
// @prefix directives and triples with ';' continuation, quoted literals
// with ^^ datatypes, and qname subjects/objects. It is not a general
// Turtle parser.
func ParseTurtle(src string) (*Document, error) {
	d := NewDocument()
	type pendingTime struct {
		subject QName
		prop    string
		at      time.Time
	}
	var pendingTimes []pendingTime

	lines := splitTurtleStatements(src)
	for _, stmt := range lines {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			continue
		}
		if strings.HasPrefix(stmt, "@prefix") {
			var prefix, uri string
			if _, err := fmt.Sscanf(stmt, "@prefix %s <%s", &prefix, &uri); err != nil {
				return nil, fmt.Errorf("prov: bad @prefix: %q", stmt)
			}
			prefix = strings.TrimSuffix(prefix, ":")
			uri = strings.TrimSuffix(strings.TrimSuffix(uri, "."), ">")
			uri = strings.TrimSpace(uri)
			d.Namespaces.Register(prefix, uri)
			continue
		}
		// subject pred obj (; pred obj)*
		parts := splitTopLevel(stmt, ';')
		first := strings.TrimSpace(parts[0])
		fields := splitFields(first)
		if len(fields) < 3 {
			return nil, fmt.Errorf("prov: bad triple %q", first)
		}
		subject := QName(fields[0])
		preds := [][]string{fields[1:]}
		for _, cont := range parts[1:] {
			f := splitFields(strings.TrimSpace(cont))
			if len(f) < 2 {
				return nil, fmt.Errorf("prov: bad continuation %q", cont)
			}
			preds = append(preds, f)
		}
		for _, pv := range preds {
			pred := pv[0]
			objTokens := pv[1:]
			obj := strings.Join(objTokens, " ")
			switch {
			case pred == "a":
				switch obj {
				case "prov:Entity":
					d.AddEntity(subject, nil)
				case "prov:Activity":
					d.AddActivity(subject, nil)
				case "prov:Agent":
					d.AddAgent(subject, nil)
				default:
					return nil, fmt.Errorf("prov: unknown class %q", obj)
				}
			case pred == "prov:startedAtTime" || pred == "prov:endedAtTime":
				t, err := parseTurtleTime(obj)
				if err != nil {
					return nil, err
				}
				a := d.AddActivity(subject, nil)
				if pred == "prov:startedAtTime" {
					a.StartTime = t
				} else {
					a.EndTime = t
				}
			case strings.HasPrefix(pred, "prov:atTime_"):
				rest := strings.TrimPrefix(pred, "prov:atTime_")
				us := strings.SplitN(rest, "_", 2)
				t, err := parseTurtleTime(obj)
				if err != nil {
					return nil, err
				}
				pendingTimes = append(pendingTimes, pendingTime{subject: subject, prop: "prov:" + us[0], at: t})
			default:
				if kind, ok := provOPropertyInverse[pred]; ok {
					d.AddRelation(Relation{Kind: kind, Subject: subject, Object: QName(obj)})
					continue
				}
				// Attribute literal.
				v, err := parseTurtleLiteral(obj)
				if err != nil {
					return nil, fmt.Errorf("prov: %s %s: %w", subject, pred, err)
				}
				switch d.NodeKind(subject) {
				case "entity":
					d.Entities[subject].Attrs[pred] = v
				case "activity":
					d.Activities[subject].Attrs[pred] = v
				case "agent":
					d.Agents[subject].Attrs[pred] = v
				default:
					return nil, fmt.Errorf("prov: attribute for undeclared node %s", subject)
				}
			}
		}
	}
	// Attach pending relation timestamps: match by (subject, property)
	// in declaration order.
	for _, pt := range pendingTimes {
		for _, r := range d.Relations {
			if r.Subject == pt.subject && "prov:"+provOProperty[r.Kind] == pt.prop && r.Time.IsZero() {
				r.Time = pt.at
				break
			}
		}
	}
	return d, nil
}

// splitTurtleStatements splits on '.' terminators outside quotes.
func splitTurtleStatements(src string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(src); i++ {
		c := src[i]
		if c == '"' && (i == 0 || src[i-1] != '\\') {
			inQuote = !inQuote
		}
		if c == '.' && !inQuote {
			// Terminator only if followed by whitespace/EOL.
			if i+1 >= len(src) || src[i+1] == '\n' || src[i+1] == ' ' || src[i+1] == '\r' {
				out = append(out, cur.String())
				cur.Reset()
				continue
			}
		}
		cur.WriteByte(c)
	}
	if strings.TrimSpace(cur.String()) != "" {
		out = append(out, cur.String())
	}
	return out
}

// splitTopLevel splits on sep outside quotes.
func splitTopLevel(s string, sep byte) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '"' && (i == 0 || s[i-1] != '\\') {
			inQuote = !inQuote
		}
		if c == sep && !inQuote {
			out = append(out, cur.String())
			cur.Reset()
			continue
		}
		cur.WriteByte(c)
	}
	out = append(out, cur.String())
	return out
}

// splitFields splits on whitespace outside quotes.
func splitFields(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '"' && (i == 0 || s[i-1] != '\\') {
			inQuote = !inQuote
		}
		if (c == ' ' || c == '\t' || c == '\n') && !inQuote {
			if cur.Len() > 0 {
				out = append(out, cur.String())
				cur.Reset()
			}
			continue
		}
		cur.WriteByte(c)
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

func parseTurtleTime(obj string) (time.Time, error) {
	lit, dt, err := splitLiteral(obj)
	if err != nil {
		return time.Time{}, err
	}
	if dt != "xsd:dateTime" {
		return time.Time{}, fmt.Errorf("prov: expected xsd:dateTime, got %q", dt)
	}
	return time.Parse(time.RFC3339Nano, lit)
}

func splitLiteral(obj string) (lit, datatype string, err error) {
	if !strings.HasPrefix(obj, "\"") {
		return "", "", fmt.Errorf("prov: not a literal: %q", obj)
	}
	end := -1
	for i := 1; i < len(obj); i++ {
		if obj[i] == '"' && obj[i-1] != '\\' {
			end = i
			break
		}
	}
	if end < 0 {
		return "", "", fmt.Errorf("prov: unterminated literal: %q", obj)
	}
	lit, err = strconv.Unquote(obj[:end+1])
	if err != nil {
		return "", "", fmt.Errorf("prov: bad literal %q: %v", obj, err)
	}
	rest := obj[end+1:]
	if strings.HasPrefix(rest, "^^") {
		datatype = strings.TrimSpace(rest[2:])
	}
	return lit, datatype, nil
}

func parseTurtleLiteral(obj string) (Value, error) {
	if !strings.HasPrefix(obj, "\"") {
		// Bare qname = reference.
		return Ref(QName(obj)), nil
	}
	lit, dt, err := splitLiteral(obj)
	if err != nil {
		return Value{}, err
	}
	switch dt {
	case "":
		return Str(lit), nil
	case "xsd:long", "xsd:int", "xsd:integer":
		i, err := strconv.ParseInt(lit, 10, 64)
		if err != nil {
			return Value{}, err
		}
		return Int(i), nil
	case "xsd:double", "xsd:float", "xsd:decimal":
		if f, ok := parseSpecialFloat(lit); ok {
			return Float(f), nil
		}
		f, err := strconv.ParseFloat(lit, 64)
		if err != nil {
			return Value{}, err
		}
		return Float(f), nil
	case "xsd:boolean":
		b, err := strconv.ParseBool(lit)
		if err != nil {
			return Value{}, err
		}
		return Bool(b), nil
	case "xsd:dateTime":
		t, err := time.Parse(time.RFC3339Nano, lit)
		if err != nil {
			return Value{}, err
		}
		return Time(t), nil
	default:
		return Str(lit), nil
	}
}
