package prov

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// PROV-JSON serialization per the W3C PROV-JSON member submission:
// a top-level object with a "prefix" section and one section per element
// class / relation kind, each mapping identifiers to attribute records.

// MarshalJSON serializes the document to PROV-JSON with deterministic
// (sorted) key order, which encoding/json guarantees for maps.
func (d *Document) MarshalJSON() ([]byte, error) {
	top := make(map[string]interface{})

	prefix := make(map[string]string)
	for _, p := range d.Namespaces.Prefixes() {
		uri, _ := d.Namespaces.Lookup(p)
		prefix[p] = uri
	}
	top["prefix"] = prefix

	if len(d.Entities) > 0 {
		sec := make(map[string]map[string]Value, len(d.Entities))
		for id, e := range d.Entities {
			sec[string(id)] = attrRecord(e.Attrs, nil)
		}
		top["entity"] = sec
	}
	if len(d.Activities) > 0 {
		sec := make(map[string]map[string]Value, len(d.Activities))
		for id, a := range d.Activities {
			extra := make(map[string]Value)
			if !a.StartTime.IsZero() {
				extra["prov:startTime"] = Time(a.StartTime)
			}
			if !a.EndTime.IsZero() {
				extra["prov:endTime"] = Time(a.EndTime)
			}
			sec[string(id)] = attrRecord(a.Attrs, extra)
		}
		top["activity"] = sec
	}
	if len(d.Agents) > 0 {
		sec := make(map[string]map[string]Value, len(d.Agents))
		for id, g := range d.Agents {
			sec[string(id)] = attrRecord(g.Attrs, nil)
		}
		top["agent"] = sec
	}

	for _, kind := range AllRelationKinds {
		rels := d.RelationsOfKind(kind)
		if len(rels) == 0 {
			continue
		}
		subjRole, objRole, _ := RelationRoles(kind)
		sec := make(map[string]map[string]Value, len(rels))
		for _, r := range rels {
			rec := attrRecord(r.Attrs, nil)
			rec[subjRole] = Ref(r.Subject)
			rec[objRole] = Ref(r.Object)
			if !r.Time.IsZero() {
				rec["prov:time"] = Time(r.Time)
			}
			sec[r.ID] = rec
		}
		top[string(kind)] = sec
	}

	return json.Marshal(top)
}

// MarshalIndent renders the document as indented PROV-JSON.
func (d *Document) MarshalIndent() ([]byte, error) {
	raw, err := d.MarshalJSON()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, raw, "", "  "); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func attrRecord(attrs Attrs, extra map[string]Value) map[string]Value {
	rec := make(map[string]Value, len(attrs)+len(extra))
	for k, v := range attrs {
		rec[k] = v
	}
	for k, v := range extra {
		rec[k] = v
	}
	return rec
}

// UnmarshalJSON parses a PROV-JSON document.
func (d *Document) UnmarshalJSON(data []byte) error {
	var top map[string]json.RawMessage
	if err := json.Unmarshal(data, &top); err != nil {
		return fmt.Errorf("prov: invalid PROV-JSON: %w", err)
	}

	fresh := NewDocument()

	if rawPrefix, ok := top["prefix"]; ok {
		var prefix map[string]string
		if err := json.Unmarshal(rawPrefix, &prefix); err != nil {
			return fmt.Errorf("prov: invalid prefix section: %w", err)
		}
		for p, uri := range prefix {
			fresh.Namespaces.Register(p, uri)
		}
	}

	parseSection := func(name string) (map[string]map[string]Value, error) {
		raw, ok := top[name]
		if !ok {
			return nil, nil
		}
		var sec map[string]map[string]Value
		if err := json.Unmarshal(raw, &sec); err != nil {
			return nil, fmt.Errorf("prov: invalid %q section: %w", name, err)
		}
		return sec, nil
	}

	if sec, err := parseSection("entity"); err != nil {
		return err
	} else {
		for id, rec := range sec {
			fresh.AddEntity(QName(id), Attrs(rec))
		}
	}
	if sec, err := parseSection("agent"); err != nil {
		return err
	} else {
		for id, rec := range sec {
			fresh.AddAgent(QName(id), Attrs(rec))
		}
	}
	if sec, err := parseSection("activity"); err != nil {
		return err
	} else {
		for id, rec := range sec {
			attrs := make(Attrs, len(rec))
			var start, end time.Time
			for k, v := range rec {
				switch k {
				case "prov:startTime":
					start, _ = v.AsTime()
				case "prov:endTime":
					end, _ = v.AsTime()
				default:
					attrs[k] = v
				}
			}
			a := fresh.AddActivity(QName(id), attrs)
			a.StartTime = start
			a.EndTime = end
		}
	}

	for _, kind := range AllRelationKinds {
		sec, err := parseSection(string(kind))
		if err != nil {
			return err
		}
		if sec == nil {
			continue
		}
		subjRole, objRole, _ := RelationRoles(kind)
		// Sort relation ids for deterministic reconstruction order.
		ids := make([]string, 0, len(sec))
		for id := range sec {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			rec := sec[id]
			rel := Relation{ID: id, Kind: kind, Attrs: make(Attrs)}
			for k, v := range rec {
				switch k {
				case subjRole:
					if q, ok := v.AsRef(); ok {
						rel.Subject = q
					} else {
						rel.Subject = QName(v.AsString())
					}
				case objRole:
					if q, ok := v.AsRef(); ok {
						rel.Object = q
					} else {
						rel.Object = QName(v.AsString())
					}
				case "prov:time":
					rel.Time, _ = v.AsTime()
				default:
					rel.Attrs[k] = v
				}
			}
			if rel.Subject == "" || rel.Object == "" {
				return fmt.Errorf("prov: relation %s/%s missing %s or %s", kind, id, subjRole, objRole)
			}
			fresh.AddRelation(rel)
		}
	}

	*d = *fresh
	return nil
}

// ParseJSON parses PROV-JSON bytes into a new document.
func ParseJSON(data []byte) (*Document, error) {
	d := NewDocument()
	if err := d.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return d, nil
}
