package prov

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"time"
)

// ValueKind discriminates the dynamic type held by a Value.
type ValueKind int

// Supported attribute value kinds.
const (
	KindString ValueKind = iota
	KindInt
	KindFloat
	KindBool
	KindTime
	KindRef // a QName reference to another identifiable element
)

// Value is a typed PROV attribute value. Values serialize to PROV-JSON
// either as bare JSON scalars (strings, numbers, booleans) or as
// {"$": "...", "type": "xsd:..."} objects when the type must be preserved
// (times, references, and non-finite floats).
type Value struct {
	kind ValueKind
	s    string
	i    int64
	f    float64
	b    bool
	t    time.Time
}

// Str returns a string Value.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// Int returns an integer Value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a floating-point Value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Bool returns a boolean Value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Time returns a timestamp Value (serialized as xsd:dateTime).
func Time(t time.Time) Value { return Value{kind: KindTime, t: t.UTC()} }

// Ref returns a Value referencing another element by qualified name.
func Ref(q QName) Value { return Value{kind: KindRef, s: string(q)} }

// Kind returns the value's kind.
func (v Value) Kind() ValueKind { return v.kind }

// AsString returns the value rendered as a string, whatever its kind.
func (v Value) AsString() string {
	switch v.kind {
	case KindString, KindRef:
		return v.s
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.b)
	case KindTime:
		return v.t.Format(time.RFC3339Nano)
	}
	return ""
}

// AsInt returns the integer held by the value; float values are truncated.
func (v Value) AsInt() (int64, bool) {
	switch v.kind {
	case KindInt:
		return v.i, true
	case KindFloat:
		return int64(v.f), true
	}
	return 0, false
}

// AsFloat returns the numeric content of the value.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindFloat:
		return v.f, true
	case KindInt:
		return float64(v.i), true
	}
	return 0, false
}

// AsBool returns the boolean held by the value.
func (v Value) AsBool() (bool, bool) {
	if v.kind == KindBool {
		return v.b, true
	}
	return false, false
}

// AsTime returns the timestamp held by the value.
func (v Value) AsTime() (time.Time, bool) {
	if v.kind == KindTime {
		return v.t, true
	}
	return time.Time{}, false
}

// AsRef returns the QName reference held by the value.
func (v Value) AsRef() (QName, bool) {
	if v.kind == KindRef {
		return QName(v.s), true
	}
	return "", false
}

// Equal reports deep equality of two values.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindString, KindRef:
		return v.s == o.s
	case KindInt:
		return v.i == o.i
	case KindFloat:
		return v.f == o.f || (math.IsNaN(v.f) && math.IsNaN(o.f))
	case KindBool:
		return v.b == o.b
	case KindTime:
		return v.t.Equal(o.t)
	}
	return false
}

// typedJSON is the PROV-JSON {"$": ..., "type": ...} representation.
type typedJSON struct {
	Dollar string `json:"$"`
	Type   string `json:"type"`
}

// MarshalJSON renders the value in PROV-JSON attribute form.
func (v Value) MarshalJSON() ([]byte, error) {
	switch v.kind {
	case KindString:
		return json.Marshal(v.s)
	case KindInt:
		return json.Marshal(typedJSON{Dollar: strconv.FormatInt(v.i, 10), Type: "xsd:long"})
	case KindFloat:
		if math.IsInf(v.f, 0) || math.IsNaN(v.f) {
			return json.Marshal(typedJSON{Dollar: formatSpecialFloat(v.f), Type: "xsd:double"})
		}
		return json.Marshal(typedJSON{Dollar: strconv.FormatFloat(v.f, 'g', -1, 64), Type: "xsd:double"})
	case KindBool:
		return json.Marshal(v.b)
	case KindTime:
		return json.Marshal(typedJSON{Dollar: v.t.Format(time.RFC3339Nano), Type: "xsd:dateTime"})
	case KindRef:
		return json.Marshal(typedJSON{Dollar: v.s, Type: "prov:QUALIFIED_NAME"})
	}
	return nil, fmt.Errorf("prov: cannot marshal value of kind %d", v.kind)
}

func formatSpecialFloat(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "INF"
	default:
		return "-INF"
	}
}

func parseSpecialFloat(s string) (float64, bool) {
	switch s {
	case "NaN":
		return math.NaN(), true
	case "INF", "+INF":
		return math.Inf(1), true
	case "-INF":
		return math.Inf(-1), true
	}
	return 0, false
}

// UnmarshalJSON parses either a bare JSON scalar or a typed
// {"$": ..., "type": ...} object.
func (v *Value) UnmarshalJSON(data []byte) error {
	var raw interface{}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	if err := dec.Decode(&raw); err != nil {
		return err
	}
	return v.fromInterface(raw)
}

func (v *Value) fromInterface(raw interface{}) error {
	switch x := raw.(type) {
	case string:
		*v = Str(x)
		return nil
	case bool:
		*v = Bool(x)
		return nil
	case json.Number:
		if i, err := x.Int64(); err == nil {
			*v = Int(i)
			return nil
		}
		f, err := x.Float64()
		if err != nil {
			return fmt.Errorf("prov: bad number %q: %v", x.String(), err)
		}
		*v = Float(f)
		return nil
	case float64:
		*v = Float(x)
		return nil
	case map[string]interface{}:
		dollar, _ := x["$"].(string)
		typ, _ := x["type"].(string)
		return v.fromTyped(dollar, typ)
	}
	return fmt.Errorf("prov: unsupported attribute value %T", raw)
}

func (v *Value) fromTyped(dollar, typ string) error {
	switch typ {
	case "xsd:long", "xsd:int", "xsd:integer", "xsd:short", "xsd:byte":
		i, err := strconv.ParseInt(dollar, 10, 64)
		if err != nil {
			return fmt.Errorf("prov: bad %s %q: %v", typ, dollar, err)
		}
		*v = Int(i)
	case "xsd:double", "xsd:float", "xsd:decimal":
		if f, ok := parseSpecialFloat(dollar); ok {
			*v = Float(f)
			return nil
		}
		f, err := strconv.ParseFloat(dollar, 64)
		if err != nil {
			return fmt.Errorf("prov: bad %s %q: %v", typ, dollar, err)
		}
		*v = Float(f)
	case "xsd:boolean":
		b, err := strconv.ParseBool(dollar)
		if err != nil {
			return fmt.Errorf("prov: bad xsd:boolean %q: %v", dollar, err)
		}
		*v = Bool(b)
	case "xsd:dateTime":
		t, err := time.Parse(time.RFC3339Nano, dollar)
		if err != nil {
			return fmt.Errorf("prov: bad xsd:dateTime %q: %v", dollar, err)
		}
		*v = Time(t)
	case "prov:QUALIFIED_NAME", "xsd:QName":
		*v = Ref(QName(dollar))
	case "", "xsd:string":
		*v = Str(dollar)
	default:
		// Unknown type: preserve the literal as a string so round-trips
		// do not lose data.
		*v = Str(dollar)
	}
	return nil
}
