package prov

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// Property tests for document merge semantics.

func TestMergeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 30; i++ {
		d := randomDoc(rng)
		merged := d.Clone()
		if err := merged.Merge(d); err != nil {
			t.Fatal(err)
		}
		if !merged.Equal(d) {
			t.Fatalf("case %d: self-merge changed the document", i)
		}
	}
}

// normalize dedups internal duplicate relations by merging into an
// empty document (Merge has set semantics over incoming relations).
func normalize(t *testing.T, d *Document) *Document {
	t.Helper()
	out := NewDocument()
	if err := out.Merge(d); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestMergeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 30; i++ {
		a := normalize(t, randomDoc(rng))
		b := normalize(t, randomDoc(rng))

		ab := a.Clone()
		if err := ab.Merge(b); err != nil {
			t.Fatal(err)
		}
		ba := b.Clone()
		if err := ba.Merge(a); err != nil {
			t.Fatal(err)
		}
		// Merge is commutative up to attribute overwrite; since randomDoc
		// uses distinct attr values per doc, restrict the check to node
		// sets and relation multisets.
		if len(ab.Entities) != len(ba.Entities) ||
			len(ab.Activities) != len(ba.Activities) ||
			len(ab.Agents) != len(ba.Agents) ||
			len(ab.Relations) != len(ba.Relations) {
			t.Fatalf("case %d: merge not commutative: %+v vs %+v", i, ab.Stats(), ba.Stats())
		}
	}
}

func TestMergeAssociativeCardinality(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 20; i++ {
		a := normalize(t, randomDoc(rng))
		b := normalize(t, randomDoc(rng))
		c := normalize(t, randomDoc(rng))
		left := a.Clone()
		if err := left.Merge(b); err != nil {
			t.Fatal(err)
		}
		if err := left.Merge(c); err != nil {
			t.Fatal(err)
		}
		bc := b.Clone()
		if err := bc.Merge(c); err != nil {
			t.Fatal(err)
		}
		right := a.Clone()
		if err := right.Merge(bc); err != nil {
			t.Fatal(err)
		}
		if left.Stats() != right.Stats() {
			t.Fatalf("case %d: association changed stats: %+v vs %+v", i, left.Stats(), right.Stats())
		}
	}
}

func TestMergedDocStillSerializes(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a, b := randomDoc(rng), randomDoc(rng)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	payload, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSON(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(back) {
		t.Fatal("merged doc lost data through serialization")
	}
}
