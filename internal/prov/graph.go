package prov

import "sort"

// Edge is a directed provenance edge for traversal purposes, oriented
// subject -> object (e.g. used: activity -> entity; wasGeneratedBy:
// entity -> activity). Following edges therefore walks *backwards in
// time*: from results toward their origins.
type Edge struct {
	Kind RelationKind
	From QName
	To   QName
}

// Edges returns all relations as traversal edges.
func (d *Document) Edges() []Edge {
	out := make([]Edge, 0, len(d.Relations))
	for _, r := range d.Relations {
		out = append(out, Edge{Kind: r.Kind, From: r.Subject, To: r.Object})
	}
	return out
}

// adjacency builds forward (subject->object) or reverse adjacency lists.
func (d *Document) adjacency(reverse bool) map[QName][]QName {
	adj := make(map[QName][]QName)
	for _, r := range d.Relations {
		from, to := r.Subject, r.Object
		if reverse {
			from, to = to, from
		}
		adj[from] = append(adj[from], to)
	}
	for _, list := range adj {
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
	}
	return adj
}

// Ancestors returns every node reachable from start by following relation
// edges in their natural orientation (toward origins), excluding start
// itself, in sorted order.
func (d *Document) Ancestors(start QName) []QName {
	return d.closure(start, false)
}

// Descendants returns every node that can reach start, i.e. everything
// derived (directly or transitively) from it, in sorted order.
func (d *Document) Descendants(start QName) []QName {
	return d.closure(start, true)
}

func (d *Document) closure(start QName, reverse bool) []QName {
	adj := d.adjacency(reverse)
	visited := map[QName]bool{start: true}
	queue := []QName{start}
	var out []QName
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range adj[cur] {
			if visited[next] {
				continue
			}
			visited[next] = true
			out = append(out, next)
			queue = append(queue, next)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Path returns one shortest chain of node ids from -> ... -> to following
// edges in natural orientation, or nil if no path exists.
func (d *Document) Path(from, to QName) []QName {
	if from == to {
		return []QName{from}
	}
	adj := d.adjacency(false)
	prev := map[QName]QName{}
	visited := map[QName]bool{from: true}
	queue := []QName{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range adj[cur] {
			if visited[next] {
				continue
			}
			visited[next] = true
			prev[next] = cur
			if next == to {
				var path []QName
				for n := to; ; n = prev[n] {
					path = append([]QName{n}, path...)
					if n == from {
						return path
					}
				}
			}
			queue = append(queue, next)
		}
	}
	return nil
}

// Subgraph extracts the sub-document induced by the given node set:
// those elements plus every relation whose both endpoints are in the set.
func (d *Document) Subgraph(nodes []QName) *Document {
	keep := make(map[QName]bool, len(nodes))
	for _, n := range nodes {
		keep[n] = true
	}
	sub := NewDocument()
	sub.Namespaces = d.Namespaces.Clone()
	for id, e := range d.Entities {
		if keep[id] {
			sub.AddEntity(id, e.Attrs.Clone())
		}
	}
	for id, a := range d.Activities {
		if keep[id] {
			na := sub.AddActivity(id, a.Attrs.Clone())
			na.StartTime, na.EndTime = a.StartTime, a.EndTime
		}
	}
	for id, g := range d.Agents {
		if keep[id] {
			sub.AddAgent(id, g.Attrs.Clone())
		}
	}
	for _, r := range d.Relations {
		if keep[r.Subject] && keep[r.Object] {
			sub.AddRelation(Relation{Kind: r.Kind, Subject: r.Subject, Object: r.Object, Time: r.Time, Attrs: r.Attrs.Clone()})
		}
	}
	return sub
}

// Neighborhood returns the sub-document within the given number of hops
// of start, ignoring edge direction.
func (d *Document) Neighborhood(start QName, hops int) *Document {
	fwd := d.adjacency(false)
	rev := d.adjacency(true)
	dist := map[QName]int{start: 0}
	queue := []QName{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if dist[cur] >= hops {
			continue
		}
		for _, adj := range [2]map[QName][]QName{fwd, rev} {
			for _, next := range adj[cur] {
				if _, ok := dist[next]; ok {
					continue
				}
				dist[next] = dist[cur] + 1
				queue = append(queue, next)
			}
		}
	}
	nodes := make([]QName, 0, len(dist))
	for n := range dist {
		nodes = append(nodes, n)
	}
	return d.Subgraph(nodes)
}
