package prov

import "sort"

// Edge is a directed provenance edge for traversal purposes, oriented
// subject -> object (e.g. used: activity -> entity; wasGeneratedBy:
// entity -> activity). Following edges therefore walks *backwards in
// time*: from results toward their origins.
type Edge struct {
	Kind RelationKind
	From QName
	To   QName
}

// Edges returns all relations as traversal edges.
func (d *Document) Edges() []Edge {
	out := make([]Edge, 0, len(d.Relations))
	for _, r := range d.Relations {
		out = append(out, Edge{Kind: r.Kind, From: r.Subject, To: r.Object})
	}
	return out
}

// docAdj is a compact per-query adjacency index: every node occurring in
// a relation gets a dense int32 id, and both orientations are stored as
// compressed sparse rows. Traversals then run over int32 slices with a
// flat visited array instead of QName-keyed maps — the same shape as the
// graphdb engine's traversal core, applied to one document.
type docAdj struct {
	ids   map[QName]int32
	names []QName
	fwd   csrRows
	rev   csrRows
}

type csrRows struct {
	rowStart []int32
	targets  []int32
}

func (c *csrRows) row(id int32) []int32 {
	return c.targets[c.rowStart[id]:c.rowStart[id+1]]
}

// buildAdj indexes the document's relations in both orientations.
// Neighbor rows are sorted by qualified name, preserving the traversal
// order of the map-based implementation this replaces.
func (d *Document) buildAdj() *docAdj {
	a := &docAdj{ids: make(map[QName]int32, 2*len(d.Relations))}
	idOf := func(q QName) int32 {
		id, ok := a.ids[q]
		if !ok {
			id = int32(len(a.names))
			a.ids[q] = id
			a.names = append(a.names, q)
		}
		return id
	}
	type edge struct{ from, to int32 }
	edges := make([]edge, len(d.Relations))
	for i, r := range d.Relations {
		edges[i] = edge{idOf(r.Subject), idOf(r.Object)}
	}
	n := len(a.names)
	build := func(reverse bool) csrRows {
		rows := csrRows{rowStart: make([]int32, n+1), targets: make([]int32, len(edges))}
		for _, e := range edges {
			from := e.from
			if reverse {
				from = e.to
			}
			rows.rowStart[from+1]++
		}
		for i := 0; i < n; i++ {
			rows.rowStart[i+1] += rows.rowStart[i]
		}
		fill := make([]int32, n)
		for _, e := range edges {
			from, to := e.from, e.to
			if reverse {
				from, to = to, from
			}
			rows.targets[rows.rowStart[from]+fill[from]] = to
			fill[from]++
		}
		for i := 0; i < n; i++ {
			row := rows.targets[rows.rowStart[i]:rows.rowStart[i+1]]
			sort.Slice(row, func(x, y int) bool { return a.names[row[x]] < a.names[row[y]] })
		}
		return rows
	}
	a.fwd = build(false)
	a.rev = build(true)
	return a
}

// Ancestors returns every node reachable from start by following relation
// edges in their natural orientation (toward origins), excluding start
// itself, in sorted order.
func (d *Document) Ancestors(start QName) []QName {
	return d.closure(start, false)
}

// Descendants returns every node that can reach start, i.e. everything
// derived (directly or transitively) from it, in sorted order.
func (d *Document) Descendants(start QName) []QName {
	return d.closure(start, true)
}

func (d *Document) closure(start QName, reverse bool) []QName {
	a := d.buildAdj()
	s, ok := a.ids[start]
	if !ok {
		return nil
	}
	rows := &a.fwd
	if reverse {
		rows = &a.rev
	}
	visited := make([]bool, len(a.names))
	visited[s] = true
	queue := make([]int32, 1, len(a.names))
	queue[0] = s
	var out []QName
	for head := 0; head < len(queue); head++ {
		for _, next := range rows.row(queue[head]) {
			if visited[next] {
				continue
			}
			visited[next] = true
			out = append(out, a.names[next])
			queue = append(queue, next)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Path returns one shortest chain of node ids from -> ... -> to following
// edges in natural orientation, or nil if no path exists.
func (d *Document) Path(from, to QName) []QName {
	if from == to {
		return []QName{from}
	}
	a := d.buildAdj()
	s, ok := a.ids[from]
	t, ok2 := a.ids[to]
	if !ok || !ok2 {
		return nil
	}
	visited := make([]bool, len(a.names))
	prev := make([]int32, len(a.names))
	visited[s] = true
	queue := make([]int32, 1, len(a.names))
	queue[0] = s
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		for _, next := range a.fwd.row(cur) {
			if visited[next] {
				continue
			}
			visited[next] = true
			prev[next] = cur
			if next == t {
				var rev []int32
				for n := t; ; n = prev[n] {
					rev = append(rev, n)
					if n == s {
						break
					}
				}
				path := make([]QName, len(rev))
				for i, n := range rev {
					path[len(rev)-1-i] = a.names[n]
				}
				return path
			}
			queue = append(queue, next)
		}
	}
	return nil
}

// Subgraph extracts the sub-document induced by the given node set:
// those elements plus every relation whose both endpoints are in the set.
func (d *Document) Subgraph(nodes []QName) *Document {
	keep := make(map[QName]bool, len(nodes))
	for _, n := range nodes {
		keep[n] = true
	}
	sub := NewDocument()
	sub.Namespaces = d.Namespaces.Clone()
	for id, e := range d.Entities {
		if keep[id] {
			sub.AddEntity(id, e.Attrs.Clone())
		}
	}
	for id, a := range d.Activities {
		if keep[id] {
			na := sub.AddActivity(id, a.Attrs.Clone())
			na.StartTime, na.EndTime = a.StartTime, a.EndTime
		}
	}
	for id, g := range d.Agents {
		if keep[id] {
			sub.AddAgent(id, g.Attrs.Clone())
		}
	}
	for _, r := range d.Relations {
		if keep[r.Subject] && keep[r.Object] {
			sub.AddRelation(Relation{Kind: r.Kind, Subject: r.Subject, Object: r.Object, Time: r.Time, Attrs: r.Attrs.Clone()})
		}
	}
	return sub
}

// Neighborhood returns the sub-document within the given number of hops
// of start, ignoring edge direction.
func (d *Document) Neighborhood(start QName, hops int) *Document {
	nodes := []QName{start}
	a := d.buildAdj()
	if s, ok := a.ids[start]; ok {
		dist := make([]int, len(a.names))
		visited := make([]bool, len(a.names))
		visited[s] = true
		queue := make([]int32, 1, len(a.names))
		queue[0] = s
		for head := 0; head < len(queue); head++ {
			cur := queue[head]
			if dist[cur] >= hops {
				continue
			}
			for _, rows := range [2]*csrRows{&a.fwd, &a.rev} {
				for _, next := range rows.row(cur) {
					if visited[next] {
						continue
					}
					visited[next] = true
					dist[next] = dist[cur] + 1
					nodes = append(nodes, a.names[next])
					queue = append(queue, next)
				}
			}
		}
	}
	return d.Subgraph(nodes)
}
