package prov

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"time"
)

// Compact binary serialization for documents. This is the journal/wire
// form behind the WAL record codec (provstore): length-prefixed varint
// fields with per-document string interning, so the hot recovery and
// replication paths decode without encoding/json's re-scan and with one
// allocation per *unique* string instead of one per field.
//
// Layout (all integers varint unless noted, little-endian for fixed):
//
//	byte    0x01                   version tag (never '{', which marks JSON)
//	varint  nNamespaces            then per namespace: str prefix, str uri
//	varint  nEntities              then per entity:    str id, attrs
//	varint  nActivities            then per activity:  str id, attrs, time start, time end
//	varint  nAgents                then per agent:     str id, attrs
//	varint  nRelations             then per relation:  str id, str kind,
//	                               str subject, str object, time, attrs
//
//	attrs:  varint n, then per attribute: str key, value
//	value:  byte kind, then kind-specific payload (see appendValue)
//	time:   byte present (0 = zero time), then zigzag unix seconds,
//	        varint nanoseconds
//	str:    varint token; 0 = new string (varint len + bytes, appended to
//	        the intern table), else intern-table index + 1
//
// Decoding mirrors ParseJSON's semantics exactly: times come back UTC
// (Time() normalizes on the JSON path too), relation attribute bags are
// non-nil, and the relation-id counter restarts at zero — a binary
// round trip and a JSON round trip of the same document produce
// MarshalJSON-identical results.

// BinaryDocTag is the version byte opening every binary document blob.
// Callers that carry "JSON or binary" blobs dispatch on the first byte:
// '{' means PROV-JSON, BinaryDocTag means this codec.
const BinaryDocTag = 0x01

// Value kind wire codes. These are the ValueKind constants today, but
// pinned separately: the wire format must not shift if ValueKind gains
// members or is reordered.
const (
	binKindString = 0
	binKindInt    = 1
	binKindFloat  = 2
	binKindBool   = 3
	binKindTime   = 4
	binKindRef    = 5
)

// binEncoder holds the per-document intern table. Pooled: the map is
// cleared, not reallocated, between documents.
type binEncoder struct {
	tab map[string]uint32
}

var binEncPool = sync.Pool{
	New: func() interface{} { return &binEncoder{tab: make(map[string]uint32, 64)} },
}

// AppendBinary appends the binary encoding of d to dst and returns the
// extended slice. Encoding cannot fail: every in-memory document is
// representable.
func AppendBinary(dst []byte, d *Document) []byte {
	e := binEncPool.Get().(*binEncoder)
	clear(e.tab)

	dst = append(dst, BinaryDocTag)

	prefixes := d.Namespaces.Prefixes()
	dst = binary.AppendUvarint(dst, uint64(len(prefixes)))
	for _, p := range prefixes {
		uri, _ := d.Namespaces.Lookup(p)
		dst = e.appendStr(dst, p)
		dst = e.appendStr(dst, uri)
	}

	dst = binary.AppendUvarint(dst, uint64(len(d.Entities)))
	for id, el := range d.Entities {
		dst = e.appendStr(dst, string(id))
		dst = e.appendAttrs(dst, el.Attrs)
	}
	dst = binary.AppendUvarint(dst, uint64(len(d.Activities)))
	for id, a := range d.Activities {
		dst = e.appendStr(dst, string(id))
		dst = e.appendAttrs(dst, a.Attrs)
		dst = appendTime(dst, a.StartTime)
		dst = appendTime(dst, a.EndTime)
	}
	dst = binary.AppendUvarint(dst, uint64(len(d.Agents)))
	for id, el := range d.Agents {
		dst = e.appendStr(dst, string(id))
		dst = e.appendAttrs(dst, el.Attrs)
	}

	dst = binary.AppendUvarint(dst, uint64(len(d.Relations)))
	for _, r := range d.Relations {
		dst = e.appendStr(dst, r.ID)
		dst = e.appendStr(dst, string(r.Kind))
		dst = e.appendStr(dst, string(r.Subject))
		dst = e.appendStr(dst, string(r.Object))
		dst = appendTime(dst, r.Time)
		dst = e.appendAttrs(dst, r.Attrs)
	}

	binEncPool.Put(e)
	return dst
}

// MarshalBinary returns the binary encoding of d in a fresh buffer.
func (d *Document) MarshalBinary() ([]byte, error) {
	return AppendBinary(nil, d), nil
}

func (e *binEncoder) appendStr(dst []byte, s string) []byte {
	if idx, ok := e.tab[s]; ok {
		return binary.AppendUvarint(dst, uint64(idx))
	}
	e.tab[s] = uint32(len(e.tab)) + 1
	dst = append(dst, 0)
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func (e *binEncoder) appendAttrs(dst []byte, attrs Attrs) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(attrs)))
	for k, v := range attrs {
		dst = e.appendStr(dst, k)
		dst = e.appendValue(dst, v)
	}
	return dst
}

func (e *binEncoder) appendValue(dst []byte, v Value) []byte {
	switch v.kind {
	case KindInt:
		dst = append(dst, binKindInt)
		return binary.AppendVarint(dst, v.i)
	case KindFloat:
		dst = append(dst, binKindFloat)
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.f))
	case KindBool:
		dst = append(dst, binKindBool)
		if v.b {
			return append(dst, 1)
		}
		return append(dst, 0)
	case KindTime:
		dst = append(dst, binKindTime)
		return appendTime(dst, v.t)
	case KindRef:
		dst = append(dst, binKindRef)
		return e.appendStr(dst, v.s)
	default: // KindString and anything unknown (the zero Value is Str(""))
		dst = append(dst, binKindString)
		return e.appendStr(dst, v.s)
	}
}

func appendTime(dst []byte, t time.Time) []byte {
	if t.IsZero() {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = binary.AppendVarint(dst, t.Unix())
	return binary.AppendUvarint(dst, uint64(t.Nanosecond()))
}

// binReader walks a binary document, bounds-checking every read so
// corrupt or truncated input yields an error, never a panic.
type binReader struct {
	buf []byte
	pos int
	tab []string
}

var errBinTruncated = fmt.Errorf("prov: truncated binary document")

func (r *binReader) remaining() int { return len(r.buf) - r.pos }

func (r *binReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return 0, errBinTruncated
	}
	r.pos += n
	return v, nil
}

func (r *binReader) varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		return 0, errBinTruncated
	}
	r.pos += n
	return v, nil
}

func (r *binReader) byte() (byte, error) {
	if r.pos >= len(r.buf) {
		return 0, errBinTruncated
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

// count reads a collection length and sanity-bounds it against the
// bytes left: every item costs at least one byte, so a count beyond
// that is corrupt — caught here before it sizes an allocation.
func (r *binReader) count() (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(r.remaining()) {
		return 0, fmt.Errorf("prov: binary document count %d exceeds input", v)
	}
	return int(v), nil
}

func (r *binReader) str() (string, error) {
	tok, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if tok != 0 {
		if tok > uint64(len(r.tab)) {
			return "", fmt.Errorf("prov: binary document string ref %d out of range", tok)
		}
		return r.tab[tok-1], nil
	}
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(r.remaining()) {
		return "", errBinTruncated
	}
	s := string(r.buf[r.pos : r.pos+int(n)])
	r.pos += int(n)
	r.tab = append(r.tab, s)
	return s, nil
}

func (r *binReader) time() (time.Time, error) {
	present, err := r.byte()
	if err != nil {
		return time.Time{}, err
	}
	switch present {
	case 0:
		return time.Time{}, nil
	case 1:
		sec, err := r.varint()
		if err != nil {
			return time.Time{}, err
		}
		ns, err := r.uvarint()
		if err != nil {
			return time.Time{}, err
		}
		if ns >= 1e9 {
			return time.Time{}, fmt.Errorf("prov: binary document nanoseconds %d out of range", ns)
		}
		return time.Unix(sec, int64(ns)).UTC(), nil
	default:
		return time.Time{}, fmt.Errorf("prov: bad time presence byte %d", present)
	}
}

func (r *binReader) attrs() (Attrs, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		// Attribute-less elements keep nil Attrs: MarshalJSON renders nil
		// and empty identically, and Document's Add* merge paths are
		// nil-tolerant, so decode skips ~one map allocation per element.
		return nil, nil
	}
	a := make(Attrs, n)
	for i := 0; i < n; i++ {
		k, err := r.str()
		if err != nil {
			return nil, err
		}
		v, err := r.value()
		if err != nil {
			return nil, err
		}
		a[k] = v
	}
	return a, nil
}

func (r *binReader) value() (Value, error) {
	kind, err := r.byte()
	if err != nil {
		return Value{}, err
	}
	switch kind {
	case binKindString:
		s, err := r.str()
		return Str(s), err
	case binKindInt:
		i, err := r.varint()
		return Int(i), err
	case binKindFloat:
		if r.remaining() < 8 {
			return Value{}, errBinTruncated
		}
		bits := binary.LittleEndian.Uint64(r.buf[r.pos:])
		r.pos += 8
		return Float(math.Float64frombits(bits)), nil
	case binKindBool:
		b, err := r.byte()
		if err != nil {
			return Value{}, err
		}
		if b > 1 {
			return Value{}, fmt.Errorf("prov: bad boolean byte %d", b)
		}
		return Bool(b == 1), nil
	case binKindTime:
		t, err := r.time()
		return Time(t), err
	case binKindRef:
		s, err := r.str()
		return Ref(QName(s)), err
	default:
		return Value{}, fmt.Errorf("prov: unknown value kind %d", kind)
	}
}

// ParseBinary decodes a binary document blob produced by AppendBinary.
// Elements are slab-allocated (one backing array per class, not one
// heap object per element) and strings come out of the intern table, so
// decode allocates per unique string, not per field.
func ParseBinary(data []byte) (*Document, error) {
	if len(data) == 0 || data[0] != BinaryDocTag {
		return nil, fmt.Errorf("prov: not a binary document")
	}
	r := &binReader{buf: data, pos: 1}

	d := &Document{Namespaces: NewNamespaceSet()}

	nNS, err := r.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < nNS; i++ {
		p, err := r.str()
		if err != nil {
			return nil, err
		}
		uri, err := r.str()
		if err != nil {
			return nil, err
		}
		d.Namespaces.Register(p, uri)
	}

	nEnt, err := r.count()
	if err != nil {
		return nil, err
	}
	ents := make([]Element, nEnt)
	d.Entities = make(map[QName]*Element, nEnt)
	for i := 0; i < nEnt; i++ {
		id, err := r.str()
		if err != nil {
			return nil, err
		}
		attrs, err := r.attrs()
		if err != nil {
			return nil, err
		}
		ents[i] = Element{ID: QName(id), Attrs: attrs}
		d.Entities[QName(id)] = &ents[i]
	}

	nAct, err := r.count()
	if err != nil {
		return nil, err
	}
	acts := make([]Activity, nAct)
	d.Activities = make(map[QName]*Activity, nAct)
	for i := 0; i < nAct; i++ {
		id, err := r.str()
		if err != nil {
			return nil, err
		}
		attrs, err := r.attrs()
		if err != nil {
			return nil, err
		}
		start, err := r.time()
		if err != nil {
			return nil, err
		}
		end, err := r.time()
		if err != nil {
			return nil, err
		}
		acts[i] = Activity{Element: Element{ID: QName(id), Attrs: attrs}, StartTime: start, EndTime: end}
		d.Activities[QName(id)] = &acts[i]
	}

	nAg, err := r.count()
	if err != nil {
		return nil, err
	}
	ags := make([]Element, nAg)
	d.Agents = make(map[QName]*Element, nAg)
	for i := 0; i < nAg; i++ {
		id, err := r.str()
		if err != nil {
			return nil, err
		}
		attrs, err := r.attrs()
		if err != nil {
			return nil, err
		}
		ags[i] = Element{ID: QName(id), Attrs: attrs}
		d.Agents[QName(id)] = &ags[i]
	}

	nRel, err := r.count()
	if err != nil {
		return nil, err
	}
	rels := make([]Relation, nRel)
	d.Relations = make([]*Relation, nRel)
	for i := 0; i < nRel; i++ {
		id, err := r.str()
		if err != nil {
			return nil, err
		}
		kind, err := r.str()
		if err != nil {
			return nil, err
		}
		subj, err := r.str()
		if err != nil {
			return nil, err
		}
		obj, err := r.str()
		if err != nil {
			return nil, err
		}
		t, err := r.time()
		if err != nil {
			return nil, err
		}
		attrs, err := r.attrs()
		if err != nil {
			return nil, err
		}
		rels[i] = Relation{ID: id, Kind: RelationKind(kind), Subject: QName(subj), Object: QName(obj), Time: t, Attrs: attrs}
		d.Relations[i] = &rels[i]
	}

	if r.pos != len(r.buf) {
		return nil, fmt.Errorf("prov: %d trailing bytes after binary document", len(r.buf)-r.pos)
	}
	return d, nil
}
