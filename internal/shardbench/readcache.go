package shardbench

import (
	"fmt"
	"net/http/httptest"
	"testing"

	"repro/internal/provservice"
	"repro/internal/provstore"
)

// lineageCachedDepth sizes the chain the cached-lineage benchmark
// traverses: deep enough that the fill (graph walk + JSON encode) is
// the dominant cost a warm hit avoids.
const lineageCachedDepth = 512

// LineageCached measures the full HTTP read path of one lineage query
// through the seq-invalidated response cache, in three modes:
//
//	cold        — the cache is purged before every request, so each one
//	              pays the full graph walk and JSON encode (plus the
//	              cache store).
//	warm        — the same query repeats against an untouched store;
//	              after the first fill every request is a cache hit.
//	invalidated — every request is preceded by a small write to the
//	              store (a single shard, so the watermark the query
//	              reads always advances): the worst case where caching
//	              buys nothing and costs a store per request.
//
// Requests go through Service.ServeHTTP with in-memory recorders — the
// whole middleware chain and encode path are measured, but no sockets.
func LineageCached(mode string) func(b *testing.B) {
	return func(b *testing.B) {
		store := provstore.NewSharded(1)
		if err := store.Put("chain", ChainDoc(lineageCachedDepth)); err != nil {
			b.Fatal(err)
		}
		svc := provservice.New(store, provservice.WithReadCache(1024, 64<<20))
		path := fmt.Sprintf("/api/v0/documents/chain/lineage?node=ex:e%d&direction=ancestors",
			lineageCachedDepth-1)
		tiny := ChainDoc(1)
		if mode == "warm" {
			// Pay the compulsory miss outside the timer so every measured
			// request is a hit, even on the b.N=1 calibration run.
			rec := httptest.NewRecorder()
			svc.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
			if rec.Code != 200 {
				b.Fatalf("prime: HTTP %d: %s", rec.Code, rec.Body.String())
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			switch mode {
			case "cold":
				svc.ReadCache().Purge()
			case "invalidated":
				// The store has one shard, so this write always bumps the
				// watermark the lineage query reads — every cached entry is
				// stale by the time the request arrives.
				b.StopTimer()
				if err := store.Put(fmt.Sprintf("inv-%d", i%128), tiny); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			req := httptest.NewRequest("GET", path, nil)
			rec := httptest.NewRecorder()
			svc.ServeHTTP(rec, req)
			if rec.Code != 200 {
				b.Fatalf("HTTP %d: %s", rec.Code, rec.Body.String())
			}
		}
		b.StopTimer()
		if st := svc.ReadCache().Stats(); mode == "warm" && st.Hits == 0 {
			b.Fatal("warm mode recorded no cache hits")
		}
	}
}

// LineageCachedModes lists the benchmark's sub-modes in display order.
func LineageCachedModes() []string { return []string{"cold", "warm", "invalidated"} }
