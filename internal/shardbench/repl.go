package shardbench

import (
	"fmt"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"repro/internal/provservice"
	"repro/internal/provstore"
	"repro/internal/repl"
)

// ReplicationThroughput measures WAL-shipping replication end to end:
// a primary loaded with `records` journaled event documents behind a
// real HTTP server, and one fresh follower per iteration that streams
// and applies the whole log (catch-up: bootstrap-free, from seq 0).
// The reported records/s metric is records streamed over HTTP, CRC-
// checked, re-journaled into the follower's WAL, and projected into its
// sharded graph state — the full pipeline a catching-up replica runs.
// Both sides journal without fsync so the number measures replication,
// not the disk's flush latency (BenchmarkWALAppend/fsync tracks that).
func ReplicationThroughput(records int) func(b *testing.B) {
	return func(b *testing.B) {
		store, err := provstore.Open(TempDir(b), provstore.Durability{
			SnapshotEvery: -1,
			SegmentBytes:  1 << 30,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = store.Close() })
		doc := ChainDoc(batchEventDepth)
		for i := 0; i < records; i++ {
			if err := store.Put(fmt.Sprintf("rec-%05d", i), doc); err != nil {
				b.Fatal(err)
			}
		}
		target := store.AppliedSeq()
		rs := repl.NewServer(store.Log(), false)
		svc := provservice.New(store, provservice.WithReplicationPrimary(rs))
		ts := httptest.NewServer(svc)
		b.Cleanup(func() { rs.Stop(); ts.Close() })

		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			fdir, err := os.MkdirTemp("", "replbench-*")
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()

			fs, err := provstore.Open(fdir, provstore.Durability{Follower: true, SnapshotEvery: -1})
			if err != nil {
				b.Fatal(err)
			}
			f, err := repl.NewFollower(fs, repl.FollowerConfig{
				PrimaryURL: ts.URL,
				ID:         fmt.Sprintf("bench-%d", i),
				RetryBase:  time.Millisecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			go f.Run()
			for fs.AppliedSeq() < target {
				time.Sleep(100 * time.Microsecond)
			}
			f.Stop()

			b.StopTimer()
			if fs.Count() != records {
				b.Fatalf("follower applied %d docs, want %d", fs.Count(), records)
			}
			if err := fs.Close(); err != nil {
				b.Fatal(err)
			}
			_ = os.RemoveAll(fdir)
			b.StartTimer()
		}
		b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	}
}
