// Package shardbench holds the sharded-engine and bulk-ingestion
// benchmark bodies shared by the root benchmark suite
// (BenchmarkShardedPutParallel, BenchmarkMixedReadWrite,
// BenchmarkBatchPut), cmd/benchreport, and the loadgen scenario
// documents, so `make bench-key`, the tracked BENCH_PR*.json rows, and
// yprov-loadgen traffic always measure the exact same workload instead
// of drifting copies.
package shardbench

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/prov"
	"repro/internal/provstore"
)

// Goroutines is the concurrency level of the sharding benchmarks (the
// ISSUE-3 acceptance point: throughput at 8 goroutines).
const Goroutines = 8

// ChainDoc builds a small linear used/wasGeneratedBy lineage chain.
func ChainDoc(depth int) *prov.Document {
	d := prov.NewDocument()
	prev := prov.QName("")
	for i := 0; i < depth; i++ {
		e := prov.NewQName("ex", fmt.Sprintf("e%d", i))
		a := prov.NewQName("ex", fmt.Sprintf("a%d", i))
		d.AddEntity(e, nil)
		d.AddActivity(a, nil)
		if prev != "" {
			d.Used(a, prev, time.Time{})
		}
		d.WasGeneratedBy(e, a, time.Time{})
		prev = e
	}
	return d
}

// PutParallel uploads distinct documents from Goroutines concurrent
// goroutines: with per-shard locks, writers on different documents
// build their graph projections without serializing on one global
// mutex. shards=1 is the single-lock baseline.
func PutParallel(shards int) func(b *testing.B) {
	return func(b *testing.B) {
		s := provstore.NewSharded(shards)
		per := b.N/Goroutines + 1
		b.ResetTimer()
		var wg sync.WaitGroup
		for g := 0; g < Goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				doc := ChainDoc(12)
				for i := 0; i < per; i++ {
					if err := s.Put(fmt.Sprintf("w%d-%d", g, i%512), doc); err != nil {
						b.Error(err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
	}
}

// TempDir works under both `go test` and the bare testing.Benchmark
// harness in cmd/benchreport (where b.TempDir's test-name plumbing is
// unavailable).
func TempDir(b *testing.B) string {
	dir, err := os.MkdirTemp("", "shardbench-*")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = os.RemoveAll(dir) })
	return dir
}

// openDurable opens a journaled store tuned so every measured fsync
// belongs to a commit: snapshots disabled, segment rotation pushed out
// of reach.
func openDurable(b *testing.B, shards int) *provstore.Store {
	s, err := provstore.Open(TempDir(b), provstore.Durability{
		Fsync:         true,
		SnapshotEvery: -1,
		SegmentBytes:  1 << 30,
		Shards:        shards,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = s.Close() })
	return s
}

// batchEventDepth sizes the documents of the bulk-ingestion pair: a
// depth-1 chain (entity + generating activity) is the per-step
// provenance event an instrumented training run emits in volume — the
// workload batching exists for.
const batchEventDepth = 1

// batchEventDocs builds size distinct event documents.
func batchEventDocs(size int) []*prov.Document {
	docs := make([]*prov.Document, size)
	for j := range docs {
		docs[j] = ChainDoc(batchEventDepth)
	}
	return docs
}

// batchStoreEvery bounds how many benchmark iterations share one
// store: ingestion benchmarks must measure the cost of adding
// documents, not the GC tax of an unboundedly growing live set.
const batchStoreEvery = 16

// BatchPutSequential is the bulk-ingestion baseline: size sequential
// Put calls on a journaled fsync store — one WAL record, one commit,
// one fsync per document. Every iteration ingests fresh ids, like a run
// streaming new step documents; stores are recycled outside the timer.
func BatchPutSequential(size int) func(b *testing.B) {
	return func(b *testing.B) {
		docs := batchEventDocs(size)
		var s *provstore.Store
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%batchStoreEvery == 0 {
				b.StopTimer()
				s = openDurable(b, 0)
				b.StartTimer()
			}
			for j := 0; j < size; j++ {
				if err := s.Put(fmt.Sprintf("i%d-d%03d", i, j), docs[j]); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BatchPutBatch ingests the same size documents through one atomic
// PutBatch — one WAL record, one group-commit fsync for the whole
// batch. Reports the measured fsyncs per batch (the acceptance point is
// exactly 1).
func BatchPutBatch(size int) func(b *testing.B) {
	return func(b *testing.B) {
		docs := batchEventDocs(size)
		batch := make(map[string]*prov.Document, size)
		var s *provstore.Store
		var syncs, batches uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%batchStoreEvery == 0 {
				b.StopTimer()
				if s != nil {
					syncs += s.Stats().Durability.Syncs
				}
				s = openDurable(b, 0)
				b.StartTimer()
			}
			for j, d := range docs {
				batch[fmt.Sprintf("i%d-d%03d", i, j)] = d
			}
			if err := s.PutBatch(batch); err != nil {
				b.Fatal(err)
			}
			batches++
			clear(batch)
		}
		b.StopTimer()
		if s != nil {
			syncs += s.Stats().Durability.Syncs
		}
		b.ReportMetric(float64(syncs)/float64(batches), "fsyncs/batch")
	}
}

// MixedReadWrite is the contention scenario that motivated sharding:
// Goroutines goroutines, one upload per 8 operations, the rest lineage
// queries — on a single-lock store every upload stalls every reader;
// sharded, only readers of the same shard wait.
func MixedReadWrite(shards int) func(b *testing.B) {
	return func(b *testing.B) {
		s := provstore.NewSharded(shards)
		const preload = 64
		seed := ChainDoc(12)
		for i := 0; i < preload; i++ {
			if err := s.Put(fmt.Sprintf("seed-%03d", i), seed); err != nil {
				b.Fatal(err)
			}
		}
		leaf := prov.NewQName("ex", "e11")
		per := b.N/Goroutines + 1
		b.ResetTimer()
		var wg sync.WaitGroup
		for g := 0; g < Goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				doc := ChainDoc(12)
				for i := 0; i < per; i++ {
					if i%8 == 0 {
						if err := s.Put(fmt.Sprintf("w%d-%d", g, i%256), doc); err != nil {
							b.Error(err)
							return
						}
						continue
					}
					id := fmt.Sprintf("seed-%03d", (g*31+i)%preload)
					nodes, err := s.Lineage(id, leaf, provstore.Ancestors, 0)
					if err != nil || len(nodes) == 0 {
						b.Errorf("lineage %s: %v %v", id, nodes, err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
	}
}
