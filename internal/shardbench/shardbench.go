// Package shardbench holds the sharded-engine benchmark bodies shared
// by the root benchmark suite (BenchmarkShardedPutParallel,
// BenchmarkMixedReadWrite) and cmd/benchreport, so `make bench-key`
// and the tracked BENCH_PR3.json rows always measure the exact same
// workload instead of drifting copies.
package shardbench

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/prov"
	"repro/internal/provstore"
)

// Goroutines is the concurrency level of the sharding benchmarks (the
// ISSUE-3 acceptance point: throughput at 8 goroutines).
const Goroutines = 8

// ChainDoc builds a small linear used/wasGeneratedBy lineage chain.
func ChainDoc(depth int) *prov.Document {
	d := prov.NewDocument()
	prev := prov.QName("")
	for i := 0; i < depth; i++ {
		e := prov.NewQName("ex", fmt.Sprintf("e%d", i))
		a := prov.NewQName("ex", fmt.Sprintf("a%d", i))
		d.AddEntity(e, nil)
		d.AddActivity(a, nil)
		if prev != "" {
			d.Used(a, prev, time.Time{})
		}
		d.WasGeneratedBy(e, a, time.Time{})
		prev = e
	}
	return d
}

// PutParallel uploads distinct documents from Goroutines concurrent
// goroutines: with per-shard locks, writers on different documents
// build their graph projections without serializing on one global
// mutex. shards=1 is the single-lock baseline.
func PutParallel(shards int) func(b *testing.B) {
	return func(b *testing.B) {
		s := provstore.NewSharded(shards)
		per := b.N/Goroutines + 1
		b.ResetTimer()
		var wg sync.WaitGroup
		for g := 0; g < Goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				doc := ChainDoc(12)
				for i := 0; i < per; i++ {
					if err := s.Put(fmt.Sprintf("w%d-%d", g, i%512), doc); err != nil {
						b.Error(err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
	}
}

// MixedReadWrite is the contention scenario that motivated sharding:
// Goroutines goroutines, one upload per 8 operations, the rest lineage
// queries — on a single-lock store every upload stalls every reader;
// sharded, only readers of the same shard wait.
func MixedReadWrite(shards int) func(b *testing.B) {
	return func(b *testing.B) {
		s := provstore.NewSharded(shards)
		const preload = 64
		seed := ChainDoc(12)
		for i := 0; i < preload; i++ {
			if err := s.Put(fmt.Sprintf("seed-%03d", i), seed); err != nil {
				b.Fatal(err)
			}
		}
		leaf := prov.NewQName("ex", "e11")
		per := b.N/Goroutines + 1
		b.ResetTimer()
		var wg sync.WaitGroup
		for g := 0; g < Goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				doc := ChainDoc(12)
				for i := 0; i < per; i++ {
					if i%8 == 0 {
						if err := s.Put(fmt.Sprintf("w%d-%d", g, i%256), doc); err != nil {
							b.Error(err)
							return
						}
						continue
					}
					id := fmt.Sprintf("seed-%03d", (g*31+i)%preload)
					nodes, err := s.Lineage(id, leaf, provstore.Ancestors, 0)
					if err != nil || len(nodes) == 0 {
						b.Errorf("lineage %s: %v %v", id, nodes, err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
	}
}
