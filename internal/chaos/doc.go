// Package chaos holds the end-to-end fault-injection suite: full
// primary/follower stacks run against wal.FaultFS (disk faults) and
// faultnet.Proxy (network faults), asserting the invariants that
// matter under failure — no acknowledged write is ever lost, overload
// sheds writes while reads keep serving, and a partitioned follower
// converges byte-identically after the link heals.
//
// The package intentionally contains no production code; this file
// exists so `go build ./...` sees a buildable package alongside the
// _test.go suite.
package chaos
