package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/prov"
	"repro/internal/provclient"
	"repro/internal/provservice"
	"repro/internal/provstore"
	"repro/internal/repl"
	"repro/internal/wal"
)

func chaosDoc(tag string) *prov.Document {
	d := prov.NewDocument()
	d.AddEntity("ex:data", prov.Attrs{"prov:type": prov.Str("provml:Dataset"), "provml:name": prov.Str(tag)})
	d.AddEntity("ex:model", prov.Attrs{"prov:type": prov.Str("provml:Model")})
	d.AddActivity("ex:train", prov.Attrs{"prov:type": prov.Str("provml:RunExecution")})
	d.Used("ex:train", "ex:data", time.Time{})
	d.WasGeneratedBy("ex:model", "ex:train", time.Time{})
	return d
}

// The durability contract under disk failure: writes acknowledged
// before the journal latches must all survive a crash-and-reopen;
// everything after the latch is refused, never half-applied. The disk
// dies mid-run via an injected write error on the WAL file.
func TestChaosFsyncErrorLosesNoAckedWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := wal.NewFaultFS(nil)
	store, err := provstore.Open(dir, provstore.Durability{Fsync: true, SnapshotEvery: -1, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	svc := provservice.New(store)
	srv := httptest.NewServer(svc)
	client := provclient.New(srv.URL)

	// The disk fails after 25 more WAL writes, then every write errors.
	ffs.FailWrites(25, errors.New("injected: I/O error"))

	var acked []string
	var refused int
	for i := 0; i < 100; i++ {
		id := fmt.Sprintf("doc-%03d", i)
		if err := client.Upload(id, chaosDoc(id)); err == nil {
			acked = append(acked, id)
		} else {
			refused++
		}
	}
	if len(acked) == 0 || refused == 0 {
		t.Fatalf("want both acks and refusals across the fault, got %d acked / %d refused", len(acked), refused)
	}
	if store.FailStop() == "" {
		t.Fatal("journal did not latch fail-stop after the injected error")
	}
	// Latched store keeps serving reads.
	if _, err := client.Get(acked[0]); err != nil {
		t.Fatalf("read on a latched store failed: %v", err)
	}

	srv.Close()
	_ = svc.Close() // close may report the latched journal error; recovery below is the check

	// Crash recovery on the (now healthy) disk: every acked write must
	// be present and intact.
	reopened, err := provstore.Open(dir, provstore.Durability{Fsync: true, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	for _, id := range acked {
		got, ok := reopened.Get(id)
		if !ok {
			t.Fatalf("acked write %q lost after reopen", id)
		}
		want, _ := chaosDoc(id).MarshalJSON()
		gotJSON, _ := got.MarshalJSON()
		if !bytes.Equal(gotJSON, want) {
			t.Fatalf("acked write %q corrupted after reopen", id)
		}
	}
}

// Overload: a disk whose fsyncs stall makes the commit queue back up;
// admission control must shed new writes with 429 while reads keep
// answering promptly the whole time.
func TestChaosSlowFsyncShedsWritesServesReads(t *testing.T) {
	ffs := wal.NewFaultFS(nil)
	store, err := provstore.Open(t.TempDir(), provstore.Durability{Fsync: true, SnapshotEvery: -1, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	svc := provservice.New(store,
		provservice.WithAdmission(provservice.AdmissionConfig{
			MaxInflightWrites: 2,
			ShedLatencyTarget: 10 * time.Millisecond,
		}))
	srv := httptest.NewServer(svc)
	t.Cleanup(srv.Close)
	t.Cleanup(func() { _ = svc.Close() })
	client := provclient.New(srv.URL)

	// Seed while healthy so reads have something to fetch.
	if err := client.Upload("seed", chaosDoc("seed")); err != nil {
		t.Fatal(err)
	}

	ffs.SlowSyncs(60 * time.Millisecond)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var shed, admitted int
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := client.Upload(fmt.Sprintf("burst-%02d", i), chaosDoc("burst"))
			mu.Lock()
			defer mu.Unlock()
			var apiErr *provclient.APIError
			switch {
			case err == nil:
				admitted++
			case errors.As(err, &apiErr) && apiErr.Status == 429:
				shed++
				if apiErr.RetryAfter < time.Second {
					t.Errorf("shed response Retry-After = %v, want >= 1s", apiErr.RetryAfter)
				}
			default:
				t.Errorf("burst write %d: unexpected error %v", i, err)
			}
		}(i)
	}

	// Reads during the write storm: all must succeed, and fast — they
	// never queue behind the stalled fsyncs.
	var worstRead time.Duration
	for i := 0; i < 10; i++ {
		start := time.Now()
		if _, err := client.Get("seed"); err != nil {
			t.Fatalf("read %d during overload failed: %v", i, err)
		}
		if took := time.Since(start); took > worstRead {
			worstRead = took
		}
		time.Sleep(5 * time.Millisecond)
	}
	wg.Wait()
	ffs.Clear()

	if shed == 0 {
		t.Fatalf("no writes shed under a stalled disk (admitted=%d)", admitted)
	}
	if admitted == 0 {
		t.Fatal("every write shed — admission should keep some throughput")
	}
	if worstRead > time.Second {
		t.Fatalf("worst read took %v during overload, want well under the fsync backlog", worstRead)
	}
	t.Logf("burst of 12: %d admitted, %d shed, worst read %v", admitted, shed, worstRead)
}

// A follower behind a degraded network (latency, connection resets,
// then a full partition) must converge to a byte-identical copy once
// the link heals, with the failure visible in its status while cut off.
func TestChaosPartitionedFollowerConverges(t *testing.T) {
	// Primary stack.
	pdir := t.TempDir()
	pstore, err := provstore.Open(pdir, provstore.Durability{Fsync: false, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	rs := repl.NewServer(pstore.Log(), false)
	svc := provservice.New(pstore, provservice.WithReplicationPrimary(rs))
	srv := httptest.NewServer(svc)
	t.Cleanup(func() { rs.Stop(); srv.Close(); _ = svc.Close() })
	client := provclient.New(srv.URL)

	// The follower only ever sees the primary through the fault proxy.
	proxy, err := faultnet.Listen("127.0.0.1:0", strings.TrimPrefix(srv.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = proxy.Close() })
	proxyURL := "http://" + proxy.Addr()

	upload := func(from, n int) {
		t.Helper()
		for i := from; i < from+n; i++ {
			id := fmt.Sprintf("c-%03d", i)
			if err := client.Upload(id, chaosDoc(id)); err != nil {
				t.Fatal(err)
			}
		}
	}
	upload(0, 10)

	// Follower bootstraps and streams via the proxy.
	fdir := t.TempDir()
	if _, err := repl.Bootstrap(fdir, proxyURL, "chaos-f"); err != nil {
		t.Fatal(err)
	}
	fstore, err := provstore.Open(fdir, provstore.Durability{Fsync: false, Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fstore.Close() })
	f, err := repl.NewFollower(fstore, repl.FollowerConfig{
		PrimaryURL:     proxyURL,
		ID:             "chaos-f",
		AckEvery:       1,
		AckInterval:    20 * time.Millisecond,
		StatusInterval: 30 * time.Millisecond,
		RetryBase:      10 * time.Millisecond,
		RetryMax:       50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	go f.Run()
	defer f.Stop()

	waitApplied := func(seq uint64) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for fstore.AppliedSeq() < seq {
			if time.Now().After(deadline) {
				t.Fatalf("follower stuck at seq %d, want %d", fstore.AppliedSeq(), seq)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitApplied(pstore.AppliedSeq())

	// Degrade: per-read latency plus a mid-stream connection reset.
	proxy.SetLatency(5 * time.Millisecond)
	upload(10, 10)
	proxy.DropConnections()
	waitApplied(pstore.AppliedSeq()) // reconnects and catches up anyway

	// Full partition: writes continue on the primary, the follower
	// falls behind and its status shows the consecutive failures.
	proxy.Partition()
	upload(20, 10)
	fellBehind := fstore.AppliedSeq() < pstore.AppliedSeq()
	deadline := time.Now().Add(5 * time.Second)
	for f.Status().ConsecutiveFailures == 0 {
		if time.Now().After(deadline) {
			t.Fatal("partitioned follower never reported consecutive failures")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !fellBehind {
		t.Fatal("follower kept up through a partition — proxy not in the path?")
	}

	// Heal: the follower must converge to a byte-identical copy.
	proxy.SetLatency(0)
	proxy.Heal()
	waitApplied(pstore.AppliedSeq())
	if f.Status().ConsecutiveFailures != 0 {
		t.Fatalf("consecutive failures = %d after heal and catch-up, want 0", f.Status().ConsecutiveFailures)
	}

	pIDs, fIDs := pstore.List(), fstore.List()
	if fmt.Sprint(pIDs) != fmt.Sprint(fIDs) {
		t.Fatalf("List mismatch after heal:\nprimary:  %v\nfollower: %v", pIDs, fIDs)
	}
	for _, id := range pIDs {
		pd, _ := pstore.Get(id)
		fd, ok := fstore.Get(id)
		if !ok {
			t.Fatalf("follower missing %q after heal", id)
		}
		pb, _ := pd.MarshalJSON()
		fb, _ := fd.MarshalJSON()
		if !bytes.Equal(pb, fb) {
			t.Fatalf("document %q differs between primary and follower after heal", id)
		}
	}
}
