// Package harvest mines provenance documents back into analyzable run
// records — the bridge that turns a yProv service full of PROV-JSON
// into the "knowledge base of previous runs" the paper's §3.2–§3.4
// scenarios build on: compare.RunInfo for hyperparameter mining and
// forecast.RunRecord for scaling-law fitting, extracted purely from the
// documents' parameter and metric entities.
package harvest

import (
	"fmt"

	"repro/internal/compare"
	"repro/internal/forecast"
	"repro/internal/prov"
)

// RunInfo extracts a compare.RunInfo from a run document produced by
// the core library: input parameters become Params (numeric) or Tags
// (string/bool), metric entities contribute their recorded last value
// under "CONTEXT/name".
func RunInfo(doc *prov.Document) (compare.RunInfo, error) {
	info := compare.RunInfo{
		Params:  map[string]float64{},
		Tags:    map[string]string{},
		Metrics: map[string]float64{},
	}
	for _, id := range doc.ActivityIDs() {
		a := doc.Activities[id]
		if t, ok := a.Attrs["prov:type"]; ok && t.AsString() == "provml:RunExecution" {
			if info.ID != "" {
				return info, fmt.Errorf("harvest: multiple run executions in document")
			}
			if v, ok := a.Attrs["provml:run_id"]; ok {
				info.ID = v.AsString()
			}
		}
	}
	if info.ID == "" {
		return info, fmt.Errorf("harvest: no provml:RunExecution activity")
	}
	for _, id := range doc.EntityIDs() {
		e := doc.Entities[id]
		t, ok := e.Attrs["prov:type"]
		if !ok {
			continue
		}
		switch t.AsString() {
		case "provml:Parameter":
			name := attr(e.Attrs, "provml:name")
			v, ok := e.Attrs["provml:value"]
			if name == "" || !ok {
				continue
			}
			switch v.Kind() {
			case prov.KindInt, prov.KindFloat:
				f, _ := v.AsFloat()
				info.Params[name] = f
			default:
				info.Tags[name] = v.AsString()
			}
		case "provml:Metric":
			key := attr(e.Attrs, "provml:context") + "/" + attr(e.Attrs, "provml:name")
			if v, ok := e.Attrs["provml:last"]; ok {
				f, _ := v.AsFloat()
				info.Metrics[key] = f
			}
		}
	}
	return info, nil
}

func attr(a prov.Attrs, key string) string {
	if v, ok := a[key]; ok {
		return v.AsString()
	}
	return ""
}

// RunRecord extracts a forecast.RunRecord from a scaling-study run
// document (requires the family / model_params / gpus / global_batch /
// epochs / patches parameters plus a TRAINING loss metric; energy comes
// from the epoch_energy_kj series when present).
func RunRecord(doc *prov.Document) (forecast.RunRecord, error) {
	info, err := RunInfo(doc)
	if err != nil {
		return forecast.RunRecord{}, err
	}
	rec := forecast.RunRecord{RunID: info.ID, Family: info.Tags["family"]}

	need := func(name string) (float64, error) {
		v, ok := info.Params[name]
		if !ok {
			return 0, fmt.Errorf("harvest: parameter %q missing", name)
		}
		return v, nil
	}
	if rec.Params, err = need("model_params"); err != nil {
		return rec, err
	}
	gpus, err := need("gpus")
	if err != nil {
		return rec, err
	}
	rec.GPUs = int(gpus)

	loss, ok := info.Metrics["TRAINING/loss"]
	if !ok {
		return rec, fmt.Errorf("harvest: TRAINING/loss metric missing")
	}
	rec.Loss = loss

	// Tokens: samples processed x tokens per sample (256 in the study).
	patches, okP := info.Params["patches"]
	epochs, okE := info.Params["epochs"]
	if okP && okE {
		rec.Tokens = patches * epochs * 256
	}

	// Energy: the harness logs per-epoch energy in kJ; total = mean x n.
	if e, ok := metricTotal(doc, "epoch_energy_kj"); ok {
		rec.EnergyJ = e * 1e3
	}

	// Walltime from the run activity interval.
	for _, id := range doc.ActivityIDs() {
		a := doc.Activities[id]
		if t, ok := a.Attrs["prov:type"]; ok && t.AsString() == "provml:RunExecution" {
			if !a.StartTime.IsZero() && !a.EndTime.IsZero() {
				rec.TimeS = a.EndTime.Sub(a.StartTime).Seconds()
			}
		}
	}
	return rec, nil
}

// metricTotal reconstructs sum(series) from a metric entity's recorded
// mean and point count.
func metricTotal(doc *prov.Document, name string) (float64, bool) {
	for _, id := range doc.EntityIDs() {
		e := doc.Entities[id]
		if t, ok := e.Attrs["prov:type"]; !ok || t.AsString() != "provml:Metric" {
			continue
		}
		if attr(e.Attrs, "provml:name") != name {
			continue
		}
		mean, ok1 := e.Attrs["provml:mean"]
		points, ok2 := e.Attrs["provml:points"]
		if !ok1 || !ok2 {
			return 0, false
		}
		m, _ := mean.AsFloat()
		n, _ := points.AsInt()
		return m * float64(n), true
	}
	return 0, false
}

// AllRunInfos harvests every parseable run document from a set.
func AllRunInfos(docs map[string]*prov.Document) []compare.RunInfo {
	var out []compare.RunInfo
	for _, doc := range docs {
		if info, err := RunInfo(doc); err == nil {
			out = append(out, info)
		}
	}
	return out
}

// AllRunRecords harvests every parseable scaling-study record.
func AllRunRecords(docs map[string]*prov.Document) []forecast.RunRecord {
	var out []forecast.RunRecord
	for _, doc := range docs {
		if rec, err := RunRecord(doc); err == nil {
			out = append(out, rec)
		}
	}
	return out
}
