package harvest

import (
	"sort"
	"testing"

	"repro/internal/compare"
	"repro/internal/experiments"
	"repro/internal/forecast"
	"repro/internal/prov"
)

func figure3Docs(t *testing.T) map[string]*prov.Document {
	t.Helper()
	res, err := experiments.RunFigure3(true)
	if err != nil {
		t.Fatal(err)
	}
	docs := make(map[string]*prov.Document, len(res.ProvDocsJSON))
	for id, payload := range res.ProvDocsJSON {
		doc, err := prov.ParseJSON(payload)
		if err != nil {
			t.Fatal(err)
		}
		docs[id] = doc
	}
	return docs
}

func TestRunInfoFromDocument(t *testing.T) {
	docs := figure3Docs(t)
	infos := AllRunInfos(docs)
	if len(infos) != 40 {
		t.Fatalf("harvested %d infos, want 40", len(infos))
	}
	for _, info := range infos {
		if info.ID == "" {
			t.Fatal("missing run id")
		}
		if _, ok := info.Params["gpus"]; !ok {
			t.Errorf("%s: gpus param missing", info.ID)
		}
		if info.Tags["family"] == "" {
			t.Errorf("%s: family tag missing", info.ID)
		}
		if _, ok := info.Metrics["TRAINING/loss"]; !ok {
			t.Errorf("%s: loss metric missing", info.ID)
		}
	}
	// The harvested set is directly usable by compare: best run by loss.
	best, err := compare.Best(infos, "TRAINING/loss", true)
	if err != nil {
		t.Fatal(err)
	}
	// Lowest loss must be a SwinV2 1B run (best architecture, most params).
	if best.Tags["family"] != "SwinTransformerV2" || best.Params["model_params"] != 1.4e9 {
		t.Errorf("best run = %+v", best)
	}
}

func TestRunRecordFromDocument(t *testing.T) {
	docs := figure3Docs(t)
	recs := AllRunRecords(docs)
	if len(recs) != 40 {
		t.Fatalf("harvested %d records, want 40", len(recs))
	}
	for _, r := range recs {
		if r.Params <= 0 || r.GPUs <= 0 || r.Loss <= 0 || r.Tokens <= 0 {
			t.Fatalf("incomplete record %+v", r)
		}
		if r.EnergyJ <= 0 {
			t.Errorf("%s: no energy harvested", r.RunID)
		}
	}
	// Harvested records must be fittable — the paper's §3.3 loop:
	// provenance -> knowledge base -> scaling-law estimate.
	var mae []forecast.RunRecord
	for _, r := range recs {
		if r.Family == "MaskedAutoencoder" {
			mae = append(mae, r)
		}
	}
	sort.Slice(mae, func(i, j int) bool { return mae[i].RunID < mae[j].RunID })
	law, err := forecast.Fit(mae)
	if err != nil {
		t.Fatal(err)
	}
	if law.RMSE > 0.05 {
		t.Errorf("fit over harvested records poor: rmse %v", law.RMSE)
	}
}

func TestRunInfoErrors(t *testing.T) {
	d := prov.NewDocument()
	d.AddEntity("ex:e", nil)
	if _, err := RunInfo(d); err == nil {
		t.Error("document without run must fail")
	}
	if _, err := RunRecord(d); err == nil {
		t.Error("record from empty doc must fail")
	}
}

func TestRunRecordMissingParams(t *testing.T) {
	d := prov.NewDocument()
	d.AddActivity("ex:run", prov.Attrs{
		"prov:type":     prov.Str("provml:RunExecution"),
		"provml:run_id": prov.Str("r1"),
	})
	if _, err := RunRecord(d); err == nil {
		t.Error("record without model_params must fail")
	}
}
