// Package zarr implements a Zarr-v2-style chunked, compressed,
// N-dimensional array store on top of pluggable key/value stores.
//
// It reproduces the storage mechanism the paper relies on for offloading
// bulky metric time series out of PROV-JSON (§4, Table 1): array metadata
// is a small JSON document (".zarray"), data is split into fixed-size
// chunks stored under "c0.c1..." keys, and each chunk is run through a
// codec (gzip or raw). Directory and in-memory stores are provided.
package zarr

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Store is the key/value abstraction arrays persist into. Keys are
// slash-separated relative paths.
type Store interface {
	// Get returns the value for key, or an error satisfying IsNotExist.
	Get(key string) ([]byte, error)
	// Set writes the value for key, replacing any previous value.
	Set(key string, value []byte) error
	// Delete removes key; deleting a missing key is not an error.
	Delete(key string) error
	// List returns all keys with the given prefix, sorted.
	List(prefix string) ([]string, error)
}

// ErrNotExist is returned by stores for missing keys.
var ErrNotExist = fmt.Errorf("zarr: key does not exist")

// IsNotExist reports whether err indicates a missing key.
func IsNotExist(err error) bool {
	return err != nil && strings.Contains(err.Error(), "does not exist")
}

// MemStore is an in-memory Store safe for concurrent use.
type MemStore struct {
	mu   sync.RWMutex
	data map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{data: make(map[string][]byte)}
}

// Get implements Store.
func (m *MemStore) Get(key string) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	v, ok := m.data[key]
	if !ok {
		return nil, fmt.Errorf("zarr: key %q does not exist", key)
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, nil
}

// Set implements Store.
func (m *MemStore) Set(key string, value []byte) error {
	cp := make([]byte, len(value))
	copy(cp, value)
	m.mu.Lock()
	m.data[key] = cp
	m.mu.Unlock()
	return nil
}

// Delete implements Store.
func (m *MemStore) Delete(key string) error {
	m.mu.Lock()
	delete(m.data, key)
	m.mu.Unlock()
	return nil
}

// List implements Store.
func (m *MemStore) List(prefix string) ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var keys []string
	for k := range m.data {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// TotalBytes returns the sum of stored value sizes (useful for Table 1).
func (m *MemStore) TotalBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var n int64
	for _, v := range m.data {
		n += int64(len(v))
	}
	return n
}

// DirStore persists keys as files under a root directory.
type DirStore struct {
	root string
}

// NewDirStore creates (if needed) and opens a directory-backed store.
func NewDirStore(root string) (*DirStore, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("zarr: create store root: %w", err)
	}
	return &DirStore{root: root}, nil
}

// Root returns the directory backing the store.
func (d *DirStore) Root() string { return d.root }

func (d *DirStore) path(key string) string {
	return filepath.Join(d.root, filepath.FromSlash(key))
}

// Get implements Store.
func (d *DirStore) Get(key string) ([]byte, error) {
	data, err := os.ReadFile(d.path(key))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("zarr: key %q does not exist", key)
	}
	return data, err
}

// Set implements Store.
func (d *DirStore) Set(key string, value []byte) error {
	p := d.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	return os.WriteFile(p, value, 0o644)
}

// Delete implements Store.
func (d *DirStore) Delete(key string) error {
	err := os.Remove(d.path(key))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// List implements Store.
func (d *DirStore) List(prefix string) ([]string, error) {
	var keys []string
	err := filepath.Walk(d.root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, err := filepath.Rel(d.root, path)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		if strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
		return nil
	})
	sort.Strings(keys)
	return keys, err
}

// TotalBytes returns the total on-disk size of all keys in the store.
func (d *DirStore) TotalBytes() (int64, error) {
	var n int64
	err := filepath.Walk(d.root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		n += info.Size()
		return nil
	})
	return n, err
}
