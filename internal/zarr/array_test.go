package zarr

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestCreateOpenRoundTrip1D(t *testing.T) {
	store := NewMemStore()
	a, err := Create(store, "m/loss", []int{10}, []int{4}, Float64, GzipCodec{})
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if err := a.WriteFloat64(in); err != nil {
		t.Fatal(err)
	}
	b, err := Open(store, "m/loss")
	if err != nil {
		t.Fatal(err)
	}
	out, err := b.ReadFloat64()
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("out[%d] = %v, want %v", i, out[i], in[i])
		}
	}
}

func TestRoundTrip2D(t *testing.T) {
	store := NewMemStore()
	a, err := Create(store, "grid", []int{5, 7}, []int{2, 3}, Float64, RawCodec{})
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float64, 35)
	for i := range in {
		in[i] = float64(i) * 1.5
	}
	if err := a.WriteFloat64(in); err != nil {
		t.Fatal(err)
	}
	out, err := a.ReadFloat64()
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("2D mismatch at %d: %v != %v", i, out[i], in[i])
		}
	}
}

func TestRoundTrip3D(t *testing.T) {
	store := NewMemStore()
	shape := []int{3, 4, 5}
	a, err := Create(store, "cube", shape, []int{2, 3, 2}, Float32, GzipCodec{Level: 1})
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float64, 60)
	for i := range in {
		in[i] = float64(i) / 4 // exactly representable in float32
	}
	if err := a.WriteFloat64(in); err != nil {
		t.Fatal(err)
	}
	out, err := a.ReadFloat64()
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("3D mismatch at %d: %v != %v", i, out[i], in[i])
		}
	}
}

func TestDTypes(t *testing.T) {
	for _, dt := range []DType{Float64, Float32, Int64, Int32} {
		store := NewMemStore()
		a, err := Create(store, "x", []int{6}, []int{4}, dt, RawCodec{})
		if err != nil {
			t.Fatal(err)
		}
		in := []float64{1, 2, 3, -4, 5, 100}
		if err := a.WriteFloat64(in); err != nil {
			t.Fatal(err)
		}
		out, err := a.ReadFloat64()
		if err != nil {
			t.Fatal(err)
		}
		for i := range in {
			if in[i] != out[i] {
				t.Errorf("dtype %s: out[%d] = %v, want %v", dt, i, out[i], in[i])
			}
		}
	}
}

func TestAppend(t *testing.T) {
	store := NewMemStore()
	a, err := Create(store, "series", []int{0}, []int{5}, Float64, GzipCodec{})
	if err != nil {
		t.Fatal(err)
	}
	var want []float64
	for round := 0; round < 13; round++ {
		batch := make([]float64, round%4+1)
		for i := range batch {
			batch[i] = float64(round*10 + i)
		}
		want = append(want, batch...)
		if err := a.Append(batch); err != nil {
			t.Fatal(err)
		}
	}
	// Appends are write-behind; persist the open tail chunk and metadata
	// before handing the store to a fresh reader.
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(store, "series")
	if err != nil {
		t.Fatal(err)
	}
	got, err := reopened.ReadFloat64()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("append[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAppendRejectsND(t *testing.T) {
	a, err := Create(NewMemStore(), "x", []int{2, 2}, []int{2, 2}, Float64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Append([]float64{1}); err == nil {
		t.Fatal("Append on 2-D array must fail")
	}
}

func TestAppendQuick(t *testing.T) {
	// Property: any sequence of appends reads back as the concatenation.
	f := func(batches [][]float64) bool {
		store := NewMemStore()
		a, err := Create(store, "q", []int{0}, []int{7}, Float64, GzipCodec{})
		if err != nil {
			return false
		}
		var want []float64
		for _, b := range batches {
			for i, v := range b {
				if math.IsNaN(v) {
					b[i] = 0
				}
			}
			if len(b) > 100 {
				b = b[:100]
			}
			want = append(want, b...)
			if err := a.Append(b); err != nil {
				return false
			}
		}
		got, err := a.ReadFloat64()
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDirStore(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDirStore(filepath.Join(dir, "arrays"))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Create(store, "metrics/loss", []int{100}, []int{32}, Float64, GzipCodec{})
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float64, 100)
	rng := rand.New(rand.NewSource(7))
	for i := range in {
		in[i] = rng.NormFloat64()
	}
	if err := a.WriteFloat64(in); err != nil {
		t.Fatal(err)
	}
	b, err := Open(store, "metrics/loss")
	if err != nil {
		t.Fatal(err)
	}
	out, err := b.ReadFloat64()
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("dirstore mismatch at %d", i)
		}
	}
	keys, err := store.List("metrics/loss/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 5 { // .zarray + 4 chunks
		t.Errorf("keys = %v, want 5 entries", keys)
	}
	n, err := store.TotalBytes()
	if err != nil || n <= 0 {
		t.Errorf("TotalBytes = %d, %v", n, err)
	}
}

func TestCorruptChunkDetected(t *testing.T) {
	store := NewMemStore()
	a, err := Create(store, "x", []int{8}, []int{4}, Float64, GzipCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.WriteFloat64([]float64{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	if err := store.Set("x/0", []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ReadFloat64(); err == nil {
		t.Fatal("corrupt chunk must surface an error")
	}
}

func TestTruncatedRawChunkDetected(t *testing.T) {
	store := NewMemStore()
	a, err := Create(store, "x", []int{4}, []int{4}, Float64, RawCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.WriteFloat64([]float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	raw, _ := store.Get("x/0")
	if err := store.Set("x/0", raw[:len(raw)-3]); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ReadFloat64(); err == nil {
		t.Fatal("truncated chunk must surface an error")
	}
}

func TestMissingChunkIsFill(t *testing.T) {
	store := NewMemStore()
	a, err := Create(store, "x", []int{8}, []int{4}, Float64, RawCodec{})
	if err != nil {
		t.Fatal(err)
	}
	// Only write the second chunk by appending metadata tricks: write all
	// then delete chunk 0.
	if err := a.WriteFloat64([]float64{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	if err := store.Delete("x/0"); err != nil {
		t.Fatal(err)
	}
	out, err := a.ReadFloat64()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if out[i] != 0 {
			t.Errorf("missing chunk should read as fill value, got %v", out[i])
		}
	}
	if out[5] != 6 {
		t.Errorf("present chunk corrupted: %v", out[5])
	}
}

func TestOpenMissingArray(t *testing.T) {
	if _, err := Open(NewMemStore(), "nope"); err == nil {
		t.Fatal("opening a missing array must fail")
	}
}

func TestCreateValidation(t *testing.T) {
	store := NewMemStore()
	if _, err := Create(store, "a", []int{4}, []int{4, 4}, Float64, nil); err == nil {
		t.Error("rank mismatch must fail")
	}
	if _, err := Create(store, "b", []int{4}, []int{0}, Float64, nil); err == nil {
		t.Error("zero chunk must fail")
	}
	if _, err := Create(store, "c", []int{4}, []int{2}, DType("<c16"), nil); err == nil {
		t.Error("bad dtype must fail")
	}
}

func TestGzipSmallerThanRawForSmoothData(t *testing.T) {
	smooth := make([]float64, 4096)
	for i := range smooth {
		smooth[i] = math.Floor(float64(i) / 100)
	}
	rawStore, gzStore := NewMemStore(), NewMemStore()
	ra, _ := Create(rawStore, "x", []int{4096}, []int{1024}, Float64, RawCodec{})
	ga, _ := Create(gzStore, "x", []int{4096}, []int{1024}, Float64, GzipCodec{})
	if err := ra.WriteFloat64(smooth); err != nil {
		t.Fatal(err)
	}
	if err := ga.WriteFloat64(smooth); err != nil {
		t.Fatal(err)
	}
	if gzStore.TotalBytes() >= rawStore.TotalBytes() {
		t.Errorf("gzip (%d B) should beat raw (%d B) on smooth data",
			gzStore.TotalBytes(), rawStore.TotalBytes())
	}
}

func TestMemStoreIsolation(t *testing.T) {
	s := NewMemStore()
	v := []byte{1, 2, 3}
	if err := s.Set("k", v); err != nil {
		t.Fatal(err)
	}
	v[0] = 99
	got, err := s.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Error("MemStore must copy values on Set")
	}
	got[1] = 99
	got2, _ := s.Get("k")
	if got2[1] != 2 {
		t.Error("MemStore must copy values on Get")
	}
}

func TestDirStoreMissingKey(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Get("missing"); !IsNotExist(err) {
		t.Errorf("want not-exist error, got %v", err)
	}
	if err := store.Delete("missing"); err != nil {
		t.Errorf("deleting missing key should be nil, got %v", err)
	}
	_ = os.RemoveAll(store.Root())
}
