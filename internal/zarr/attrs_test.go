package zarr

import "testing"

func TestAttrsRoundTrip(t *testing.T) {
	store := NewMemStore()
	a, err := Create(store, "x", []int{4}, []int{4}, Float64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SetAttrs(map[string]interface{}{"metric": "loss", "points": 4}); err != nil {
		t.Fatal(err)
	}
	b, err := Open(store, "x")
	if err != nil {
		t.Fatal(err)
	}
	attrs, err := b.Attrs()
	if err != nil {
		t.Fatal(err)
	}
	if attrs["metric"] != "loss" {
		t.Errorf("attrs = %v", attrs)
	}
	if attrs["points"].(float64) != 4 {
		t.Errorf("points = %v", attrs["points"])
	}
}

func TestAttrsMissingIsEmpty(t *testing.T) {
	store := NewMemStore()
	a, err := Create(store, "x", []int{1}, []int{1}, Float64, nil)
	if err != nil {
		t.Fatal(err)
	}
	attrs, err := a.Attrs()
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 0 {
		t.Errorf("attrs = %v", attrs)
	}
}

func TestAttrsCorrupt(t *testing.T) {
	store := NewMemStore()
	a, err := Create(store, "x", []int{1}, []int{1}, Float64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Set("x/.zattrs", []byte("{broken")); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Attrs(); err == nil {
		t.Fatal("corrupt attrs must error")
	}
}

func TestAttrsUnencodable(t *testing.T) {
	store := NewMemStore()
	a, err := Create(store, "x", []int{1}, []int{1}, Float64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SetAttrs(map[string]interface{}{"bad": make(chan int)}); err == nil {
		t.Fatal("unencodable attrs must error")
	}
}
