package zarr

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
)

// DType identifies an element type, using NumPy-style codes.
type DType string

// Supported element types (little-endian).
const (
	Float64 DType = "<f8"
	Float32 DType = "<f4"
	Int64   DType = "<i8"
	Int32   DType = "<i4"
)

// Size returns the element size in bytes.
func (d DType) Size() int {
	switch d {
	case Float64, Int64:
		return 8
	case Float32, Int32:
		return 4
	}
	return 0
}

// Valid reports whether d is a supported dtype.
func (d DType) Valid() bool { return d.Size() != 0 }

// Meta is the ".zarray" metadata document.
type Meta struct {
	ZarrFormat int     `json:"zarr_format"`
	Shape      []int   `json:"shape"`
	Chunks     []int   `json:"chunks"`
	DType      DType   `json:"dtype"`
	Compressor string  `json:"compressor"`
	FillValue  float64 `json:"fill_value"`
	Order      string  `json:"order"`
}

// Array is a chunked N-dimensional array bound to a store path.
//
// One-dimensional arrays support buffered appends: Append stages values
// for the open (unsealed) tail chunk in memory and only compresses and
// stores a chunk once it fills. Read paths and metadata accessors see
// through the buffer, but the backing store lags the in-memory state
// until Flush (or Sync) is called — callers that reopen the array from
// the store, or that hand the store to another reader, must Flush first.
type Array struct {
	store Store
	path  string // key prefix, e.g. "metrics/loss"
	codec Codec

	mu        sync.Mutex
	meta      Meta
	tail      []float64 // staged elements of the open tail chunk (1-D only)
	tailStart int       // flat index where tail begins; multiple of the chunk size
	tailDirty bool      // tail holds values the store has not seen
	metaDirty bool      // in-memory shape not yet persisted to the store
}

const (
	metaKey  = ".zarray"
	attrsKey = ".zattrs"
)

// Create initializes a new array at path within store. Shape and chunks
// must have equal rank; every chunk extent must be positive.
func Create(store Store, path string, shape, chunks []int, dtype DType, codec Codec) (*Array, error) {
	if len(shape) == 0 || len(shape) != len(chunks) {
		return nil, fmt.Errorf("zarr: shape %v and chunks %v must be same non-zero rank", shape, chunks)
	}
	for i := range shape {
		if shape[i] < 0 || chunks[i] <= 0 {
			return nil, fmt.Errorf("zarr: invalid shape %v / chunks %v", shape, chunks)
		}
	}
	if !dtype.Valid() {
		return nil, fmt.Errorf("zarr: unsupported dtype %q", dtype)
	}
	if codec == nil {
		codec = GzipCodec{}
	}
	a := &Array{
		store: store,
		path:  strings.TrimSuffix(path, "/"),
		meta: Meta{
			ZarrFormat: 2,
			Shape:      append([]int(nil), shape...),
			Chunks:     append([]int(nil), chunks...),
			DType:      dtype,
			Compressor: codec.ID(),
			Order:      "C",
		},
		codec: codec,
	}
	if err := a.writeMeta(); err != nil {
		return nil, err
	}
	return a, nil
}

// Open loads an existing array from store.
func Open(store Store, path string) (*Array, error) {
	path = strings.TrimSuffix(path, "/")
	raw, err := store.Get(path + "/" + metaKey)
	if err != nil {
		return nil, fmt.Errorf("zarr: open %q: %w", path, err)
	}
	var meta Meta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return nil, fmt.Errorf("zarr: corrupt metadata at %q: %w", path, err)
	}
	if meta.ZarrFormat != 2 {
		return nil, fmt.Errorf("zarr: unsupported format %d", meta.ZarrFormat)
	}
	if !meta.DType.Valid() {
		return nil, fmt.Errorf("zarr: unsupported dtype %q", meta.DType)
	}
	codec, err := codecByID(meta.Compressor)
	if err != nil {
		return nil, err
	}
	return &Array{store: store, path: path, meta: meta, codec: codec}, nil
}

func (a *Array) writeMeta() error {
	raw, err := json.Marshal(a.meta)
	if err != nil {
		return err
	}
	if err := a.store.Set(a.path+"/"+metaKey, raw); err != nil {
		return err
	}
	a.metaDirty = false
	return nil
}

// SetAttrs writes the array's user attributes (".zattrs" document).
// Values must be JSON-encodable.
func (a *Array) SetAttrs(attrs map[string]interface{}) error {
	raw, err := json.Marshal(attrs)
	if err != nil {
		return fmt.Errorf("zarr: encoding attrs: %w", err)
	}
	return a.store.Set(a.path+"/"+attrsKey, raw)
}

// Attrs reads the array's user attributes; a missing ".zattrs" yields
// an empty map.
func (a *Array) Attrs() (map[string]interface{}, error) {
	raw, err := a.store.Get(a.path + "/" + attrsKey)
	if err != nil {
		if IsNotExist(err) {
			return map[string]interface{}{}, nil
		}
		return nil, err
	}
	var attrs map[string]interface{}
	if err := json.Unmarshal(raw, &attrs); err != nil {
		return nil, fmt.Errorf("zarr: corrupt .zattrs: %w", err)
	}
	return attrs, nil
}

// Meta returns a copy of the array metadata, including any appended but
// not yet flushed extent.
func (a *Array) Meta() Meta {
	a.mu.Lock()
	defer a.mu.Unlock()
	m := a.meta
	m.Shape = append([]int(nil), a.meta.Shape...)
	m.Chunks = append([]int(nil), a.meta.Chunks...)
	return m
}

// Shape returns the current array shape.
func (a *Array) Shape() []int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]int(nil), a.meta.Shape...)
}

// Len returns the total number of elements.
func (a *Array) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lenLocked()
}

func (a *Array) lenLocked() int {
	n := 1
	for _, s := range a.meta.Shape {
		n *= s
	}
	return n
}

// chunkKey renders the store key of the chunk with the given grid coords.
func (a *Array) chunkKey(coords []int) string {
	parts := make([]string, len(coords))
	for i, c := range coords {
		parts[i] = strconv.Itoa(c)
	}
	return a.path + "/" + strings.Join(parts, ".")
}

// gridDims returns the number of chunks along each dimension.
func (a *Array) gridDims() []int {
	g := make([]int, len(a.meta.Shape))
	for i := range g {
		g[i] = (a.meta.Shape[i] + a.meta.Chunks[i] - 1) / a.meta.Chunks[i]
	}
	return g
}

// chunkElems returns the number of elements in one (full) chunk.
func (a *Array) chunkElems() int {
	n := 1
	for _, c := range a.meta.Chunks {
		n *= c
	}
	return n
}

// WriteFloat64 writes the full array contents from a flat C-order slice,
// replacing any buffered tail data.
func (a *Array) WriteFloat64(data []float64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(data) != a.lenLocked() {
		return fmt.Errorf("zarr: data length %d != array size %d", len(data), a.lenLocked())
	}
	// The incoming data supersedes anything staged for the tail chunk.
	a.tail = nil
	a.tailStart = 0
	a.tailDirty = false
	grid := a.gridDims()
	coords := make([]int, len(grid))
	for {
		if err := a.writeChunk(coords, data); err != nil {
			return err
		}
		if !incCoords(coords, grid) {
			break
		}
	}
	if a.metaDirty {
		return a.writeMeta()
	}
	return nil
}

// ReadFloat64 reads the full array into a flat C-order slice. Buffered
// appends are visible even before Flush.
func (a *Array) ReadFloat64() ([]float64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]float64, a.lenLocked())
	for i := range out {
		out[i] = a.meta.FillValue
	}
	if len(out) == 0 {
		return out, nil
	}
	grid := a.gridDims()
	coords := make([]int, len(grid))
	for {
		if err := a.readChunk(coords, out); err != nil {
			return nil, err
		}
		if !incCoords(coords, grid) {
			break
		}
	}
	// The open tail chunk lives in memory; overlay it over whatever the
	// store holds (a stale flushed copy, or nothing).
	copy(out[a.tailStart:a.tailStart+len(a.tail)], a.tail)
	return out, nil
}

// incCoords advances C-order grid coordinates; false when exhausted.
func incCoords(coords, dims []int) bool {
	for i := len(coords) - 1; i >= 0; i-- {
		coords[i]++
		if coords[i] < dims[i] {
			return true
		}
		coords[i] = 0
	}
	return false
}

// chunkRegion computes, for a chunk at coords, the per-dim [start, extent).
func (a *Array) chunkRegion(coords []int) (start, extent []int) {
	start = make([]int, len(coords))
	extent = make([]int, len(coords))
	for i, c := range coords {
		start[i] = c * a.meta.Chunks[i]
		e := a.meta.Chunks[i]
		if start[i]+e > a.meta.Shape[i] {
			e = a.meta.Shape[i] - start[i]
		}
		extent[i] = e
	}
	return start, extent
}

// writeChunk encodes the sub-block of data at chunk coords and stores it.
// Chunks are always stored at full chunk shape with fill-value padding so
// that append/resize never rewrites interior chunks.
func (a *Array) writeChunk(coords []int, data []float64) error {
	start, extent := a.chunkRegion(coords)
	buf := make([]float64, a.chunkElems())
	for i := range buf {
		buf[i] = a.meta.FillValue
	}
	copyRegion(buf, a.meta.Chunks, data, a.meta.Shape, start, extent, true)
	payload, err := encodeElems(buf, a.meta.DType)
	if err != nil {
		return err
	}
	enc, err := a.codec.Encode(payload)
	if err != nil {
		return err
	}
	return a.store.Set(a.chunkKey(coords), enc)
}

// readChunk loads the chunk at coords into the destination array slice.
func (a *Array) readChunk(coords []int, dst []float64) error {
	raw, err := a.store.Get(a.chunkKey(coords))
	if err != nil {
		if IsNotExist(err) {
			return nil // missing chunk = fill value
		}
		return err
	}
	payload, err := a.codec.Decode(raw)
	if err != nil {
		return fmt.Errorf("zarr: chunk %v: %w", coords, err)
	}
	buf, err := decodeElems(payload, a.meta.DType, a.chunkElems())
	if err != nil {
		return fmt.Errorf("zarr: chunk %v: %w", coords, err)
	}
	start, extent := a.chunkRegion(coords)
	copyRegion(buf, a.meta.Chunks, dst, a.meta.Shape, start, extent, false)
	return nil
}

// copyRegion copies a rectangular region between a chunk buffer (chunk
// shape) and the full array buffer (array shape). When toChunk is true
// data flows array -> chunk, else chunk -> array.
func copyRegion(chunk []float64, chunkShape []int, array []float64, arrayShape []int, start, extent []int, toChunk bool) {
	rank := len(arrayShape)
	idx := make([]int, rank)
	for {
		// Compute flat offsets for current idx.
		aOff, cOff := 0, 0
		for d := 0; d < rank; d++ {
			aOff = aOff*arrayShape[d] + start[d] + idx[d]
			cOff = cOff*chunkShape[d] + idx[d]
		}
		// Copy the innermost run in one go.
		run := extent[rank-1]
		if toChunk {
			copy(chunk[cOff:cOff+run], array[aOff:aOff+run])
		} else {
			copy(array[aOff:aOff+run], chunk[cOff:cOff+run])
		}
		// Advance all dims except the innermost (covered by the run).
		d := rank - 2
		for ; d >= 0; d-- {
			idx[d]++
			if idx[d] < extent[d] {
				break
			}
			idx[d] = 0
		}
		if d < 0 {
			break
		}
	}
}

// encodeElems converts float64 elements to the on-disk little-endian form.
func encodeElems(data []float64, dt DType) ([]byte, error) {
	out := make([]byte, len(data)*dt.Size())
	switch dt {
	case Float64:
		for i, v := range data {
			binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
		}
	case Float32:
		for i, v := range data {
			binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(float32(v)))
		}
	case Int64:
		for i, v := range data {
			binary.LittleEndian.PutUint64(out[i*8:], uint64(int64(v)))
		}
	case Int32:
		for i, v := range data {
			binary.LittleEndian.PutUint32(out[i*4:], uint32(int32(v)))
		}
	default:
		return nil, fmt.Errorf("zarr: unsupported dtype %q", dt)
	}
	return out, nil
}

// decodeElems converts on-disk bytes back to float64 elements.
func decodeElems(raw []byte, dt DType, want int) ([]float64, error) {
	if len(raw) != want*dt.Size() {
		return nil, fmt.Errorf("zarr: chunk payload %d bytes, want %d", len(raw), want*dt.Size())
	}
	out := make([]float64, want)
	switch dt {
	case Float64:
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
		}
	case Float32:
		for i := range out {
			out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:])))
		}
	case Int64:
		for i := range out {
			out[i] = float64(int64(binary.LittleEndian.Uint64(raw[i*8:])))
		}
	case Int32:
		for i := range out {
			out[i] = float64(int32(binary.LittleEndian.Uint32(raw[i*4:])))
		}
	default:
		return nil, fmt.Errorf("zarr: unsupported dtype %q", dt)
	}
	return out, nil
}

// Append extends a 1-D array with more values. It is the hot path for
// incremental metric logging: values are staged in the in-memory tail
// buffer and a chunk is compressed and stored only once it fills, making
// each call amortized O(1). Call Flush to persist the open tail chunk
// and metadata before the store is read by anyone else.
func (a *Array) Append(values []float64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.meta.Shape) != 1 {
		return fmt.Errorf("zarr: Append requires a 1-D array, got rank %d", len(a.meta.Shape))
	}
	if len(values) == 0 {
		return nil
	}
	if a.tail == nil {
		if err := a.activateTailLocked(); err != nil {
			return err
		}
	}
	chunk := a.meta.Chunks[0]
	for len(values) > 0 {
		n := chunk - len(a.tail)
		if n > len(values) {
			n = len(values)
		}
		a.tail = append(a.tail, values[:n]...)
		values = values[n:]
		a.meta.Shape[0] += n
		a.metaDirty = true
		a.tailDirty = true
		if len(a.tail) == chunk {
			if err := a.sealTailLocked(); err != nil {
				return err
			}
		}
	}
	return nil
}

// activateTailLocked loads any existing partial tail chunk from the
// store into the staging buffer, switching the array to buffered mode.
func (a *Array) activateTailLocked() error {
	chunk := a.meta.Chunks[0]
	tailChunk := a.meta.Shape[0] / chunk
	tailStart := tailChunk * chunk
	a.tailStart = tailStart
	a.tail = make([]float64, 0, chunk)
	if rem := a.meta.Shape[0] - tailStart; rem > 0 {
		raw, err := a.store.Get(a.chunkKey([]int{tailChunk}))
		if err != nil {
			if !IsNotExist(err) {
				return err
			}
			// Missing chunk reads as fill values.
			a.tail = a.tail[:rem]
			for i := range a.tail {
				a.tail[i] = a.meta.FillValue
			}
			return nil
		}
		payload, err := a.codec.Decode(raw)
		if err != nil {
			return err
		}
		full, err := decodeElems(payload, a.meta.DType, chunk)
		if err != nil {
			return err
		}
		a.tail = append(a.tail, full[:rem]...)
	}
	return nil
}

// sealTailLocked compresses and stores the (full) tail chunk and opens
// the next one.
func (a *Array) sealTailLocked() error {
	if err := a.storeTailLocked(); err != nil {
		return err
	}
	a.tailStart += a.meta.Chunks[0]
	a.tail = a.tail[:0]
	return nil
}

// storeTailLocked writes the current tail buffer as a full-shape chunk,
// padding a partial tail with fill values — byte-identical to the layout
// an unbuffered write produces.
func (a *Array) storeTailLocked() error {
	chunk := a.meta.Chunks[0]
	buf := a.tail
	if len(buf) < chunk {
		buf = make([]float64, chunk)
		copy(buf, a.tail)
		for i := len(a.tail); i < chunk; i++ {
			buf[i] = a.meta.FillValue
		}
	}
	payload, err := encodeElems(buf, a.meta.DType)
	if err != nil {
		return err
	}
	enc, err := a.codec.Encode(payload)
	if err != nil {
		return err
	}
	if err := a.store.Set(a.chunkKey([]int{a.tailStart / chunk}), enc); err != nil {
		return err
	}
	a.tailDirty = false
	return nil
}

// Flush persists the open tail chunk (if any) and any pending metadata
// update to the store. It is cheap when nothing is pending. After Flush
// the store holds a complete, self-describing array readable by Open.
func (a *Array) Flush() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.tailDirty && len(a.tail) > 0 {
		if err := a.storeTailLocked(); err != nil {
			return err
		}
	}
	if a.metaDirty {
		return a.writeMeta()
	}
	return nil
}

// Sync is an alias for Flush.
func (a *Array) Sync() error { return a.Flush() }
