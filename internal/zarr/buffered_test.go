package zarr

import (
	"bytes"
	"fmt"
	"testing"
)

// eagerWrite reproduces the pre-buffering storage layout: a full-shape
// array written in one shot, every chunk stored at full chunk extent
// with fill-value padding.
func eagerWrite(t *testing.T, data []float64, chunk int, codec Codec) *MemStore {
	t.Helper()
	store := NewMemStore()
	a, err := Create(store, "x", []int{len(data)}, []int{chunk}, Float64, codec)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.WriteFloat64(data); err != nil {
		t.Fatal(err)
	}
	return store
}

// bufferedAppend streams the same data through the write-behind Append
// path in the given batch sizes, then seals with Flush.
func bufferedAppend(t *testing.T, data []float64, chunk, batch int, codec Codec) *MemStore {
	t.Helper()
	store := NewMemStore()
	a, err := Create(store, "x", []int{0}, []int{chunk}, Float64, codec)
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < len(data); lo += batch {
		hi := lo + batch
		if hi > len(data) {
			hi = len(data)
		}
		if err := a.Append(data[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	return store
}

func storesEqual(t *testing.T, want, got *MemStore, label string) {
	t.Helper()
	wk, err := want.List("")
	if err != nil {
		t.Fatal(err)
	}
	gk, err := got.List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(wk) != len(gk) {
		t.Fatalf("%s: key sets differ: eager %v, buffered %v", label, wk, gk)
	}
	for i, k := range wk {
		if gk[i] != k {
			t.Fatalf("%s: key sets differ: eager %v, buffered %v", label, wk, gk)
		}
		wv, _ := want.Get(k)
		gv, _ := got.Get(k)
		if !bytes.Equal(wv, gv) {
			t.Errorf("%s: key %q differs: eager %d bytes, buffered %d bytes", label, k, len(wv), len(gv))
		}
	}
}

// TestBufferedAppendByteIdentical proves the write-behind buffer is a
// pure latency optimization: after Flush, every store key — chunk
// payloads and ".zarray" metadata — is byte-for-byte identical to the
// eager full-write layout, across chunk-aligned, mid-chunk, and
// single-value append patterns and both codecs.
func TestBufferedAppendByteIdentical(t *testing.T) {
	data := make([]float64, 1000)
	for i := range data {
		data[i] = float64(i%313) * 0.5
	}
	for _, codec := range []Codec{RawCodec{}, GzipCodec{}, GzipCodec{Level: 1}} {
		for _, chunk := range []int{1, 7, 100, 256, 2048} {
			for _, batch := range []int{1, 3, chunk, chunk + 1, len(data)} {
				if batch <= 0 {
					continue
				}
				label := fmt.Sprintf("codec=%s chunk=%d batch=%d", codec.ID(), chunk, batch)
				eager := eagerWrite(t, data, chunk, codec)
				buffered := bufferedAppend(t, data, chunk, batch, codec)
				storesEqual(t, eager, buffered, label)
			}
		}
	}
}

// TestBufferedReadSeesUnflushedTail checks the read paths see through
// the buffer before any Flush.
func TestBufferedReadSeesUnflushedTail(t *testing.T) {
	store := NewMemStore()
	a, err := Create(store, "x", []int{0}, []int{8}, Float64, GzipCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Append([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if got := a.Shape()[0]; got != 3 {
		t.Fatalf("Shape = %d, want 3", got)
	}
	if got := a.Meta().Shape[0]; got != 3 {
		t.Fatalf("Meta shape = %d, want 3", got)
	}
	out, err := a.ReadFloat64()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[0] != 1 || out[2] != 3 {
		t.Fatalf("ReadFloat64 = %v", out)
	}
	// The store must not yet contain the open tail chunk.
	if _, err := store.Get("x/0"); !IsNotExist(err) {
		t.Fatalf("tail chunk persisted before Flush: %v", err)
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Get("x/0"); err != nil {
		t.Fatalf("tail chunk missing after Flush: %v", err)
	}
	// Appending across a seal boundary, then reopening after Flush.
	if err := a.Append([]float64{4, 5, 6, 7, 8, 9, 10}); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	b, err := Open(store, "x")
	if err != nil {
		t.Fatal(err)
	}
	out, err = b.ReadFloat64()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 10 || out[9] != 10 {
		t.Fatalf("reopened read = %v", out)
	}
}

// TestBufferedAppendAfterOpen appends through a reopened array that
// already has a mid-chunk tail in the store.
func TestBufferedAppendAfterOpen(t *testing.T) {
	store := NewMemStore()
	a, err := Create(store, "x", []int{0}, []int{4}, Float64, RawCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Append([]float64{1, 2, 3, 4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	b, err := Open(store, "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Append([]float64{7, 8, 9}); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	out, err := b.ReadFloat64()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	if len(out) != len(want) {
		t.Fatalf("len = %d, want %d", len(out), len(want))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

// TestWriteFloat64DiscardsBufferedTail: a full overwrite supersedes any
// staged tail data and persists pending metadata.
func TestWriteFloat64DiscardsBufferedTail(t *testing.T) {
	store := NewMemStore()
	a, err := Create(store, "x", []int{0}, []int{4}, Float64, RawCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Append([]float64{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	repl := []float64{10, 20, 30, 40, 50}
	if err := a.WriteFloat64(repl); err != nil {
		t.Fatal(err)
	}
	b, err := Open(store, "x")
	if err != nil {
		t.Fatal(err)
	}
	out, err := b.ReadFloat64()
	if err != nil {
		t.Fatal(err)
	}
	for i := range repl {
		if out[i] != repl[i] {
			t.Fatalf("out[%d] = %v, want %v", i, out[i], repl[i])
		}
	}
}
