package zarr

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sync"
)

// Codec compresses and decompresses chunk payloads.
type Codec interface {
	// ID is the codec identifier recorded in array metadata.
	ID() string
	// Encode compresses src.
	Encode(src []byte) ([]byte, error)
	// Decode decompresses src.
	Decode(src []byte) ([]byte, error)
}

// RawCodec stores chunks uncompressed.
type RawCodec struct{}

// ID implements Codec.
func (RawCodec) ID() string { return "raw" }

// Encode implements Codec.
func (RawCodec) Encode(src []byte) ([]byte, error) {
	out := make([]byte, len(src))
	copy(out, src)
	return out, nil
}

// Decode implements Codec.
func (RawCodec) Decode(src []byte) ([]byte, error) {
	out := make([]byte, len(src))
	copy(out, src)
	return out, nil
}

// GzipCodec compresses chunks with gzip at the configured level.
type GzipCodec struct {
	Level int
}

// ID implements Codec.
func (GzipCodec) ID() string { return "gzip" }

// gzipWriterPools recycles gzip writers per compression level; allocating
// a fresh deflate state per chunk dominates small-chunk encode cost.
var gzipWriterPools sync.Map // int -> *sync.Pool

func gzipWriterPool(level int) *sync.Pool {
	if p, ok := gzipWriterPools.Load(level); ok {
		return p.(*sync.Pool)
	}
	p, _ := gzipWriterPools.LoadOrStore(level, &sync.Pool{
		New: func() interface{} {
			w, err := gzip.NewWriterLevel(io.Discard, level)
			if err != nil {
				panic(err) // level validated before pool use
			}
			return w
		},
	})
	return p.(*sync.Pool)
}

// Encode implements Codec.
func (c GzipCodec) Encode(src []byte) ([]byte, error) {
	level := c.Level
	if level == 0 {
		level = gzip.DefaultCompression
	}
	if level < gzip.HuffmanOnly || level > gzip.BestCompression {
		return nil, fmt.Errorf("zarr: invalid gzip level %d", level)
	}
	pool := gzipWriterPool(level)
	w := pool.Get().(*gzip.Writer)
	var buf bytes.Buffer
	w.Reset(&buf)
	if _, err := w.Write(src); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	pool.Put(w)
	return buf.Bytes(), nil
}

// Decode implements Codec.
func (GzipCodec) Decode(src []byte) ([]byte, error) {
	r, err := gzip.NewReader(bytes.NewReader(src))
	if err != nil {
		return nil, fmt.Errorf("zarr: corrupt gzip chunk: %w", err)
	}
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("zarr: corrupt gzip chunk: %w", err)
	}
	return out, nil
}

// codecByID resolves the codec named in array metadata.
func codecByID(id string) (Codec, error) {
	switch id {
	case "", "raw":
		return RawCodec{}, nil
	case "gzip":
		return GzipCodec{}, nil
	default:
		return nil, fmt.Errorf("zarr: unknown codec %q", id)
	}
}
