package zarr

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// Codec compresses and decompresses chunk payloads.
type Codec interface {
	// ID is the codec identifier recorded in array metadata.
	ID() string
	// Encode compresses src.
	Encode(src []byte) ([]byte, error)
	// Decode decompresses src.
	Decode(src []byte) ([]byte, error)
}

// RawCodec stores chunks uncompressed.
type RawCodec struct{}

// ID implements Codec.
func (RawCodec) ID() string { return "raw" }

// Encode implements Codec.
func (RawCodec) Encode(src []byte) ([]byte, error) {
	out := make([]byte, len(src))
	copy(out, src)
	return out, nil
}

// Decode implements Codec.
func (RawCodec) Decode(src []byte) ([]byte, error) {
	out := make([]byte, len(src))
	copy(out, src)
	return out, nil
}

// GzipCodec compresses chunks with gzip at the configured level.
type GzipCodec struct {
	Level int
}

// ID implements Codec.
func (GzipCodec) ID() string { return "gzip" }

// Encode implements Codec.
func (c GzipCodec) Encode(src []byte) ([]byte, error) {
	level := c.Level
	if level == 0 {
		level = gzip.DefaultCompression
	}
	var buf bytes.Buffer
	w, err := gzip.NewWriterLevel(&buf, level)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(src); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode implements Codec.
func (GzipCodec) Decode(src []byte) ([]byte, error) {
	r, err := gzip.NewReader(bytes.NewReader(src))
	if err != nil {
		return nil, fmt.Errorf("zarr: corrupt gzip chunk: %w", err)
	}
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("zarr: corrupt gzip chunk: %w", err)
	}
	return out, nil
}

// codecByID resolves the codec named in array metadata.
func codecByID(id string) (Codec, error) {
	switch id {
	case "", "raw":
		return RawCodec{}, nil
	case "gzip":
		return GzipCodec{}, nil
	default:
		return nil, fmt.Errorf("zarr: unknown codec %q", id)
	}
}
