package readcache

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func entry(body string) Entry {
	return Entry{Body: []byte(body), ContentType: "application/json"}
}

func TestHitRequiresMatchingVersion(t *testing.T) {
	c := New(16, 1<<20)
	fills := 0
	fill := func() (Entry, error) { fills++; return entry("v1"), nil }

	e, hit, err := c.Do("k", 1, fill)
	if err != nil || hit || string(e.Body) != "v1" {
		t.Fatalf("first Do: e=%q hit=%v err=%v", e.Body, hit, err)
	}
	e, hit, _ = c.Do("k", 1, fill)
	if !hit || string(e.Body) != "v1" || fills != 1 {
		t.Fatalf("same-version Do should hit: hit=%v fills=%d", hit, fills)
	}
	// The version advanced (a touched shard applied a mutation): the
	// entry is stale and must be recomputed.
	_, hit, _ = c.Do("k", 2, func() (Entry, error) { fills++; return entry("v2"), nil })
	if hit || fills != 2 {
		t.Fatalf("new-version Do must miss: hit=%v fills=%d", hit, fills)
	}
	e, hit, _ = c.Do("k", 2, fill)
	if !hit || string(e.Body) != "v2" {
		t.Fatalf("refilled entry should hit: hit=%v body=%q", hit, e.Body)
	}
	if st := c.Stats(); st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 hits / 2 misses", st)
	}
}

func TestOlderVersionDoesNotClobberNewer(t *testing.T) {
	c := New(16, 1<<20)
	if _, _, err := c.Do("k", 5, func() (Entry, error) { return entry("new"), nil }); err != nil {
		t.Fatal(err)
	}
	// A laggard that captured version 3 before a writer raced it: it
	// computes privately and must not replace the newer entry.
	e, hit, _ := c.Do("k", 3, func() (Entry, error) { return entry("old"), nil })
	if hit || string(e.Body) != "old" {
		t.Fatalf("laggard should compute privately: hit=%v body=%q", hit, e.Body)
	}
	e, hit, _ = c.Do("k", 5, func() (Entry, error) { return entry("recomputed"), nil })
	if !hit || string(e.Body) != "new" {
		t.Fatalf("newer entry must survive: hit=%v body=%q", hit, e.Body)
	}
}

func TestEntryBound(t *testing.T) {
	c := New(4, 1<<20)
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("k%d", i)
		if _, _, err := c.Do(k, 1, func() (Entry, error) { return entry(k), nil }); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
	// Oldest keys evicted, newest retained.
	if _, ok := c.Get("k0", 1); ok {
		t.Fatal("k0 should have been evicted")
	}
	if _, ok := c.Get("k7", 1); !ok {
		t.Fatal("k7 should be cached")
	}
	if st := c.Stats(); st.Evictions != 4 {
		t.Fatalf("evictions = %d, want 4", st.Evictions)
	}
}

func TestByteBound(t *testing.T) {
	c := New(1000, 100)
	body := strings.Repeat("x", 20)
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%d", i)
		if _, _, err := c.Do(k, 1, func() (Entry, error) { return entry(body), nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Bytes > 100 {
		t.Fatalf("bytes = %d, exceeds bound", st.Bytes)
	}
	if st.Entries != 5 || st.Evictions != 5 {
		t.Fatalf("stats = %+v, want 5 entries / 5 evictions", st)
	}
}

func TestOversizedBodyBypassed(t *testing.T) {
	c := New(16, 100) // single-entry cap = 25 bytes
	big := strings.Repeat("x", 30)
	if _, _, err := c.Do("big", 1, func() (Entry, error) { return entry(big), nil }); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatal("oversized body must not be cached")
	}
	if st := c.Stats(); st.Bypassed != 1 {
		t.Fatalf("bypassed = %d, want 1", st.Bypassed)
	}
}

func TestDisabledCacheStillServes(t *testing.T) {
	for _, c := range []*Cache{New(0, 1000), New(1000, 0)} {
		e, hit, err := c.Do("k", 1, func() (Entry, error) { return entry("x"), nil })
		if err != nil || hit || string(e.Body) != "x" {
			t.Fatalf("disabled cache Do: e=%q hit=%v err=%v", e.Body, hit, err)
		}
		if c.Len() != 0 {
			t.Fatal("disabled cache must not store")
		}
	}
}

func TestFillErrorNotCached(t *testing.T) {
	c := New(16, 1<<20)
	boom := errors.New("boom")
	if _, _, err := c.Do("k", 1, func() (Entry, error) { return Entry{}, boom }); err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatal("errored fill must not be cached")
	}
	e, hit, err := c.Do("k", 1, func() (Entry, error) { return entry("ok"), nil })
	if err != nil || hit || string(e.Body) != "ok" {
		t.Fatalf("retry after error: e=%q hit=%v err=%v", e.Body, hit, err)
	}
	if st := c.Stats(); st.FillErrors != 1 {
		t.Fatalf("fill_errors = %d, want 1", st.FillErrors)
	}
}

func TestSingleFlightCoalesces(t *testing.T) {
	c := New(16, 1<<20)
	var fills atomic.Int32
	gate := make(chan struct{})
	const waiters = 8

	var wg sync.WaitGroup
	results := make([]string, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, _, err := c.Do("hot", 1, func() (Entry, error) {
				fills.Add(1)
				<-gate // park the fill so every other goroutine piles up
				return entry("shared"), nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = string(e.Body)
		}(i)
	}
	// Wait until the leader's fill is running, then let the rest pile
	// onto the flight before releasing it.
	for c.Stats().Misses == 0 {
	}
	for int(c.Stats().Misses+c.Stats().Hits) < waiters {
	}
	close(gate)
	wg.Wait()

	if n := fills.Load(); n != 1 {
		t.Fatalf("fill ran %d times, want 1", n)
	}
	for i, r := range results {
		if r != "shared" {
			t.Fatalf("waiter %d got %q", i, r)
		}
	}
	if st := c.Stats(); st.Coalesced == 0 {
		t.Fatalf("expected coalesced waiters, stats = %+v", st)
	}
}

func TestPurge(t *testing.T) {
	c := New(16, 1<<20)
	_, _, _ = c.Do("k", 1, func() (Entry, error) { return entry("x"), nil })
	c.Purge()
	if c.Len() != 0 || c.Stats().Bytes != 0 {
		t.Fatal("purge must empty the cache")
	}
	if _, hit, _ := c.Do("k", 1, func() (Entry, error) { return entry("x"), nil }); hit {
		t.Fatal("purged entry must not hit")
	}
}
