// Package readcache is a sequence-invalidated cache over encoded HTTP
// response bodies. Entries are keyed by a canonicalized query string
// plus a version — the maximum applied-sequence watermark of the store
// shards the query touches (provstore.ReadVersion). Journal sequences
// are globally monotone, so the version changes whenever any touched
// shard applies a mutation: a lookup whose version equals the stored
// one is guaranteed to observe identical state, which makes hits
// trivially coherent without TTLs or explicit invalidation hooks.
//
// The cache is a bounded LRU — bounded both in entry count and total
// body bytes — with single-flight miss coalescing: concurrent misses
// on the same (key, version) compute the response once and share it.
package readcache

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// Entry is one cached response: the fully encoded body plus the
// headers the read path replays on a hit. Body must not be mutated
// after being handed to the cache (it is shared between goroutines).
type Entry struct {
	Body        []byte
	ContentType string
	ETag        string
}

// Stats is a point-in-time counter snapshot, embedded in /stats.
type Stats struct {
	Hits       uint64  `json:"hits"`
	Misses     uint64  `json:"misses"`
	Coalesced  uint64  `json:"coalesced"` // misses served by another request's fill
	Evictions  uint64  `json:"evictions"`
	Bypassed   uint64  `json:"bypassed"` // fills not cached (oversized or out-of-date version)
	FillErrors uint64  `json:"fill_errors"`
	Entries    int     `json:"entries"`
	Bytes      int64   `json:"bytes"`
	HitRatio   float64 `json:"hit_ratio"`
}

// Cache is the bounded LRU. Safe for concurrent use; the zero value is
// not usable — construct with New.
type Cache struct {
	maxEntries int
	maxBytes   int64
	// maxEntryBytes caps a single body so one huge response cannot
	// evict the whole working set; derived from maxBytes in New.
	maxEntryBytes int64

	mu     sync.Mutex
	ll     *list.List // front = most recently used
	items  map[string]*list.Element
	bytes  int64
	flight map[string]*flight

	hits, misses, coalesced     obs.Counter
	evictions, bypassed, errors obs.Counter
}

// cacheEntry is the LRU element payload.
type cacheEntry struct {
	key     string
	version uint64
	e       Entry
}

// flight is one in-progress fill that concurrent misses wait on.
type flight struct {
	version uint64
	done    chan struct{}
	e       Entry
	err     error
}

// New returns a cache bounded to maxEntries entries and maxBytes total
// body bytes. Either bound <= 0 disables the cache dimension-free:
// New(0, x) and New(x, 0) return a cache that never stores (Do always
// runs the fill), so callers can treat "cache off" uniformly.
func New(maxEntries int, maxBytes int64) *Cache {
	c := &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
		flight:     make(map[string]*flight),
	}
	if maxEntries > 0 && maxBytes > 0 {
		c.maxEntryBytes = maxBytes / 4
		if c.maxEntryBytes < 1 {
			c.maxEntryBytes = 1
		}
	}
	return c
}

// enabled reports whether both bounds admit storage.
func (c *Cache) enabled() bool { return c.maxEntries > 0 && c.maxBytes > 0 }

// Get returns the entry cached under key if its version matches.
func (c *Cache) Get(key string, version uint64) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ce := el.Value.(*cacheEntry)
		if ce.version == version {
			c.ll.MoveToFront(el)
			c.hits.Inc()
			return ce.e, true
		}
	}
	c.misses.Inc()
	return Entry{}, false
}

// Do returns the response for (key, version), computing it with fill
// on a miss. hit reports whether the entry was served from the cache
// (coalesced waiters count as hits: their response came from another
// request's fill, not their own). fill runs without the cache lock;
// its error is propagated to every coalesced waiter and never cached.
//
// Version discipline: versions for a key are monotone (they come from
// store watermarks). An entry stored under an older version is stale
// and replaced; a caller whose version is older than the stored entry
// raced a concurrent writer — it computes fresh state but does not
// clobber the newer entry.
func (c *Cache) Do(key string, version uint64, fill func() (Entry, error)) (e Entry, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		ce := el.Value.(*cacheEntry)
		if ce.version == version {
			c.ll.MoveToFront(el)
			c.hits.Inc()
			c.mu.Unlock()
			return ce.e, true, nil
		}
	}
	c.misses.Inc()
	if f, ok := c.flight[key]; ok && f.version == version {
		// Same query, same version, fill already running: wait for it.
		c.coalesced.Inc()
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return Entry{}, false, f.err
		}
		return f.e, true, nil
	}
	var f *flight
	leader := false
	if _, ok := c.flight[key]; !ok {
		f = &flight{version: version, done: make(chan struct{})}
		c.flight[key] = f
		leader = true
	}
	c.mu.Unlock()

	e, err = fill()

	if !leader {
		// A fill for a different version of this key is in progress; our
		// result is computed privately and not stored (rare: requires a
		// version change racing the flight).
		if err != nil {
			c.errors.Inc()
		} else {
			c.bypassed.Inc()
		}
		return e, false, err
	}
	f.e, f.err = e, err
	c.mu.Lock()
	delete(c.flight, key)
	if err != nil {
		c.errors.Inc()
	} else {
		c.storeLocked(key, version, e)
	}
	c.mu.Unlock()
	close(f.done)
	return e, false, err
}

// storeLocked inserts (or replaces) key's entry and evicts from the
// LRU tail until both bounds hold. c.mu must be held.
func (c *Cache) storeLocked(key string, version uint64, e Entry) {
	if !c.enabled() || int64(len(e.Body)) > c.maxEntryBytes {
		c.bypassed.Inc()
		return
	}
	if el, ok := c.items[key]; ok {
		ce := el.Value.(*cacheEntry)
		if ce.version > version {
			// A newer fill already landed; keep it.
			c.bypassed.Inc()
			return
		}
		c.bytes += int64(len(e.Body)) - int64(len(ce.e.Body))
		ce.version, ce.e = version, e
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, version: version, e: e})
		c.bytes += int64(len(e.Body))
	}
	for c.ll.Len() > c.maxEntries || c.bytes > c.maxBytes {
		el := c.ll.Back()
		if el == nil {
			break
		}
		ce := c.ll.Remove(el).(*cacheEntry)
		delete(c.items, ce.key)
		c.bytes -= int64(len(ce.e.Body))
		c.evictions.Inc()
	}
}

// Purge drops every cached entry (in-flight fills are unaffected).
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
	c.bytes = 0
}

// Len reports the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	entries, bytes := c.ll.Len(), c.bytes
	c.mu.Unlock()
	st := Stats{
		Hits:       c.hits.Value(),
		Misses:     c.misses.Value(),
		Coalesced:  c.coalesced.Value(),
		Evictions:  c.evictions.Value(),
		Bypassed:   c.bypassed.Value(),
		FillErrors: c.errors.Value(),
		Entries:    entries,
		Bytes:      bytes,
	}
	if total := st.Hits + st.Misses; total > 0 {
		st.HitRatio = float64(st.Hits) / float64(total)
	}
	return st
}

// RegisterObs exposes the cache's instruments on reg (nil-safe):
// hit/miss/coalesced/eviction counters, entry/byte gauges, and the
// cumulative hit-ratio gauge the loadgen report scrapes.
func (c *Cache) RegisterObs(reg *obs.Registry) {
	reg.RegisterCounter("yprov_readcache_hits_total",
		"Read-cache lookups served from a valid cached body.", nil, &c.hits)
	reg.RegisterCounter("yprov_readcache_misses_total",
		"Read-cache lookups that had to compute the response.", nil, &c.misses)
	reg.RegisterCounter("yprov_readcache_coalesced_total",
		"Misses served by another in-flight request's fill (single-flight).", nil, &c.coalesced)
	reg.RegisterCounter("yprov_readcache_evictions_total",
		"Entries evicted to satisfy the entry or byte bound.", nil, &c.evictions)
	reg.RegisterCounter("yprov_readcache_bypassed_total",
		"Fills not cached: oversized body or raced by a newer version.", nil, &c.bypassed)
	reg.RegisterCounter("yprov_readcache_fill_errors_total",
		"Fills that returned an error (never cached).", nil, &c.errors)
	reg.RegisterGaugeFunc("yprov_readcache_entries",
		"Entries currently cached.", nil,
		func() float64 { return float64(c.Len()) })
	reg.RegisterGaugeFunc("yprov_readcache_bytes",
		"Body bytes currently cached.", nil,
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(c.bytes)
		})
	reg.RegisterGaugeFunc("yprov_readcache_hit_ratio",
		"Cumulative hit ratio: hits / (hits + misses).", nil,
		func() float64 { return c.Stats().HitRatio })
}
