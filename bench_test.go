// Package repro's root benchmark suite regenerates every table and
// figure of the paper under testing.B, plus the logging-overhead and
// design-choice ablations called out in DESIGN.md §4:
//
//	BenchmarkTable1            — metric offloading file sizes (Table 1)
//	BenchmarkTable2            — PROV vs RO-Crate feature verification (Table 2)
//	BenchmarkFigure1           — example multi-context document (Figure 1)
//	BenchmarkFigure3           — energy x loss scaling grids (Figure 3)
//	BenchmarkLog*              — logging hot paths ("minimal overhead")
//	BenchmarkZarrChunking/*    — chunk-size ablation
//	BenchmarkSinks/*           — storage backend ablation
//	BenchmarkLineage/*         — graph lineage vs document-scan ablation
//	BenchmarkAllreduce/*       — ring vs naive collective model ablation
//	BenchmarkTelemetry/*       — collector sampling-period ablation
//	BenchmarkWALAppend/*       — journaled mutation durability hot path
//	BenchmarkRecovery          — provstore crash-recovery (snapshot + replay)
//	BenchmarkShardedPutParallel — concurrent uploads, single lock vs shards
//	BenchmarkMixedReadWrite    — 8-goroutine mixed workload, single lock vs shards
//	BenchmarkBatchPut/*        — bulk ingestion, sequential Puts vs one group-committed batch
//	BenchmarkReplicationThroughput — WAL-shipping follower catch-up (records/s streamed + applied)
//	BenchmarkHistObserve       — one histogram observation (the metrics hot path on every request)
//	BenchmarkFlightRecord      — flight-recorder admission on the response path (unsampled vs sampled)
package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/flightrec"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/prov"
	"repro/internal/provstore"
	"repro/internal/shardbench"
	"repro/internal/telemetry"
	"repro/internal/trainsim"
	"repro/internal/wal"
	"repro/internal/zarr"
)

// BenchmarkTable1 regenerates Table 1 (report: bytes per format).
func BenchmarkTable1(b *testing.B) {
	var last experiments.Table1Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1(5000, 1)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.Rows[0].NormalBytes), "json-bytes")
	b.ReportMetric(float64(last.Rows[1].NormalBytes), "zarr-bytes")
	b.ReportMetric(float64(last.Rows[2].NormalBytes), "nc-bytes")
	b.ReportMetric(last.ReductionPct, "reduction-%")
}

// BenchmarkTable2 regenerates the Table 2 verification.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable2()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 8 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFigure1 regenerates the Figure 1 example document.
func BenchmarkFigure1(b *testing.B) {
	var size int
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure1()
		if err != nil {
			b.Fatal(err)
		}
		size = len(res.ProvJSON)
	}
	b.ReportMetric(float64(size), "prov-json-bytes")
}

// BenchmarkFigure3 regenerates the full 2x4x5 scaling sweep.
func BenchmarkFigure3(b *testing.B) {
	var res experiments.Figure3Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunFigure3(false)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Surface two headline cells so regressions in calibration show up
	// in bench logs.
	mae := res.Grids[0].Cells["1B"][128].Metric
	b.ReportMetric(mae, "mae-1B-128gpu")
	swin := res.Grids[1].Cells["1B"][128].Metric
	b.ReportMetric(swin, "swin-1B-128gpu")
}

// BenchmarkFigure3Instrumented includes full yProv4ML tracking of all
// 40 runs, measuring the library's end-to-end cost in the use case.
func BenchmarkFigure3Instrumented(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure3(true); err != nil {
			b.Fatal(err)
		}
	}
}

// --- logging overhead ("minimal overhead" claim) ----------------------

func benchRun(b *testing.B) *core.Run {
	b.Helper()
	exp := core.NewExperiment("bench")
	return exp.StartRun("r",
		core.WithClock(core.NewSimClock(time.Unix(0, 0), time.Microsecond)),
		core.WithStorage(core.StorageInline))
}

// BenchmarkLogMetric measures one LogMetric call.
func BenchmarkLogMetric(b *testing.B) {
	run := benchRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run.LogMetric("loss", metrics.Training, int64(i), float64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLogParam measures one LogParam call.
func BenchmarkLogParam(b *testing.B) {
	run := benchRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run.LogParam(fmt.Sprintf("p%d", i%64), i); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildProv measures document generation for a populated run.
func BenchmarkBuildProv(b *testing.B) {
	run := benchRun(b)
	for i := 0; i < 1000; i++ {
		_ = run.LogMetric("loss", metrics.Training, int64(i), float64(i))
	}
	for i := 0; i < 20; i++ {
		_ = run.LogParam(fmt.Sprintf("p%d", i), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run.BuildProv(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProvJSONMarshal measures PROV-JSON serialization.
func BenchmarkProvJSONMarshal(b *testing.B) {
	run := benchRun(b)
	for i := 0; i < 500; i++ {
		_ = run.LogMetric("loss", metrics.Training, int64(i), float64(i))
	}
	doc, err := run.BuildProv(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := doc.MarshalJSON(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablations --------------------------------------------------------

// BenchmarkZarrChunking ablates the chunk size of the metric store.
func BenchmarkZarrChunking(b *testing.B) {
	data := make([]float64, 100_000)
	for i := range data {
		data[i] = float64(i % 977)
	}
	for _, chunk := range []int{256, 1024, 4096, 16384} {
		b.Run(fmt.Sprintf("chunk%d", chunk), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				store := zarr.NewMemStore()
				arr, err := zarr.Create(store, "x", []int{len(data)}, []int{chunk}, zarr.Float64, zarr.GzipCodec{})
				if err != nil {
					b.Fatal(err)
				}
				if err := arr.WriteFloat64(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSinks ablates the three metric storage backends.
func BenchmarkSinks(b *testing.B) {
	c := metrics.NewCollection()
	base := time.Unix(0, 0)
	for i := 0; i < 20_000; i++ {
		c.Log("loss", metrics.Training, metrics.Point{Step: int64(i), Time: base.Add(time.Duration(i) * time.Second), Value: float64(i)})
	}
	b.Run("inline-json", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink := &metrics.InlineJSONSink{}
			if _, err := sink.Flush(c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("zarr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink := &metrics.ZarrSink{}
			if _, err := sink.Flush(c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("netcdf", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink := &metrics.NetCDFSink{}
			if _, err := sink.Flush(c); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// lineageFixture uploads a deep chain document to a store.
func lineageFixture(b *testing.B, depth int) (*provstore.Store, *prov.Document) {
	b.Helper()
	d := prov.NewDocument()
	prev := prov.QName("")
	for i := 0; i < depth; i++ {
		e := prov.NewQName("ex", fmt.Sprintf("e%d", i))
		a := prov.NewQName("ex", fmt.Sprintf("a%d", i))
		d.AddEntity(e, nil)
		d.AddActivity(a, nil)
		if prev != "" {
			d.Used(a, prev, time.Time{})
		}
		d.WasGeneratedBy(e, a, time.Time{})
		prev = e
	}
	s := provstore.New()
	if err := s.Put("chain", d); err != nil {
		b.Fatal(err)
	}
	return s, d
}

// BenchmarkLineage compares graph-backed lineage queries against naive
// in-document traversal (the Neo4j-vs-scan design choice).
func BenchmarkLineage(b *testing.B) {
	store, doc := lineageFixture(b, 400)
	leaf := prov.NewQName("ex", "e399")
	b.Run("graphdb", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nodes, err := store.Lineage("chain", leaf, provstore.Ancestors, 0)
			if err != nil || len(nodes) == 0 {
				b.Fatalf("%v %v", len(nodes), err)
			}
		}
	})
	b.Run("document-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := doc.Ancestors(leaf); len(got) == 0 {
				b.Fatal("no ancestors")
			}
		}
	})
}

// BenchmarkAllreduce compares the ring model against the naive
// broadcast baseline across group sizes.
func BenchmarkAllreduce(b *testing.B) {
	for _, gpus := range []int{8, 128} {
		c := trainsim.FrontierLike(gpus)
		b.Run(fmt.Sprintf("ring-%dgpu", gpus), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				acc += c.AllreduceSeconds(2.8e9)
			}
			b.ReportMetric(c.AllreduceSeconds(2.8e9)*1e3, "model-ms")
			_ = acc
		})
		b.Run(fmt.Sprintf("naive-%dgpu", gpus), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				acc += c.NaiveAllreduceSeconds(2.8e9)
			}
			b.ReportMetric(c.NaiveAllreduceSeconds(2.8e9)*1e3, "model-ms")
			_ = acc
		})
	}
}

// BenchmarkTelemetry ablates the collector sampling period over a fixed
// simulated hour: finer sampling costs linearly more.
func BenchmarkTelemetry(b *testing.B) {
	for _, period := range []time.Duration{time.Second, 10 * time.Second, time.Minute} {
		b.Run(fmt.Sprintf("period-%s", period), func(b *testing.B) {
			col := &telemetry.Collector{
				Samplers: []telemetry.Sampler{telemetry.NewGPUSampler(telemetry.MI250XGCD(), 0, 1)},
				Period:   period,
			}
			for i := 0; i < b.N; i++ {
				if _, _, err := col.Collect(time.Hour, telemetry.ConstantLoad(0.8)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkZarrAppend measures the incremental metric-logging hot path
// (one small append per training step).
func BenchmarkZarrAppend(b *testing.B) {
	store := zarr.NewMemStore()
	arr, err := zarr.Create(store, "loss", []int{0}, []int{4096}, zarr.Float64, zarr.GzipCodec{Level: 1})
	if err != nil {
		b.Fatal(err)
	}
	buf := []float64{0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf[0] = float64(i)
		if err := arr.Append(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppend measures one journaled mutation acknowledgment on
// the durable document store (the write-ahead-log hot path), with and
// without fsync.
func BenchmarkWALAppend(b *testing.B) {
	for _, mode := range []struct {
		name  string
		fsync bool
	}{{"nosync", false}, {"fsync", true}} {
		b.Run(mode.name, func(b *testing.B) {
			l, _, err := wal.Open(b.TempDir(), wal.Options{Fsync: mode.fsync})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			payload := make([]byte, 256)
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecovery measures reopening a journaled provstore: snapshot
// decode plus tail replay plus graph re-projection for 100 documents.
func BenchmarkRecovery(b *testing.B) {
	dir := b.TempDir()
	s, err := provstore.Open(dir, provstore.Durability{SnapshotEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	doc := prov.NewDocument()
	for i := 0; i < 20; i++ {
		e := prov.NewQName("ex", fmt.Sprintf("e%d", i))
		a := prov.NewQName("ex", fmt.Sprintf("a%d", i))
		doc.AddEntity(e, nil)
		doc.AddActivity(a, nil)
		doc.WasGeneratedBy(e, a, time.Time{})
	}
	for i := 0; i < 100; i++ {
		if err := s.Put(fmt.Sprintf("doc-%03d", i), doc); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := provstore.Open(dir, provstore.Durability{SnapshotEvery: -1})
		if err != nil {
			b.Fatal(err)
		}
		if s.Count() != 100 {
			b.Fatalf("recovered %d docs", s.Count())
		}
		b.StopTimer()
		s.Close()
		b.StartTimer()
	}
}

// shardConfigs pits the PR-2 single-lock layout (NewSharded(1)) against
// the sharded engine with one shard per benchmark goroutine. The
// benchmark bodies live in internal/shardbench, shared with
// cmd/benchreport so the tracked BENCH_PR3.json rows measure exactly
// this workload.
var shardConfigs = []struct {
	name   string
	shards int
}{
	{"single-lock", 1},
	{"sharded", shardbench.Goroutines},
}

// BenchmarkShardedPutParallel uploads distinct documents from 8
// concurrent goroutines: with per-shard locks, writers on different
// documents build their graph projections without serializing on one
// global mutex.
func BenchmarkShardedPutParallel(b *testing.B) {
	for _, cfg := range shardConfigs {
		b.Run(cfg.name, shardbench.PutParallel(cfg.shards))
	}
}

// BenchmarkMixedReadWrite runs the contention scenario that motivated
// sharding: 8 goroutines, 1 upload per 8 operations, the rest lineage
// queries — on a single-lock store every upload stalls every reader;
// sharded, only readers of the same shard wait.
func BenchmarkMixedReadWrite(b *testing.B) {
	for _, cfg := range shardConfigs {
		b.Run(cfg.name, shardbench.MixedReadWrite(cfg.shards))
	}
}

// BenchmarkLineageCached measures the full HTTP lineage read path
// through the seq-invalidated response cache: cold (purged every
// request), warm (pure hits — the acceptance point is >= 10x over
// cold), and invalidated (a write precedes every read, so caching buys
// nothing). Bodies live in internal/shardbench, shared with
// cmd/benchreport.
func BenchmarkLineageCached(b *testing.B) {
	for _, mode := range shardbench.LineageCachedModes() {
		b.Run(mode, shardbench.LineageCached(mode))
	}
}

// BenchmarkReplicationThroughput measures WAL-shipping replication: a
// fresh follower per iteration streams the primary's whole journal over
// HTTP, re-journals it locally, and projects it into its own sharded
// state. The records/s metric is the catch-up rate of a new replica.
func BenchmarkReplicationThroughput(b *testing.B) {
	b.Run("records=1000", shardbench.ReplicationThroughput(1000))
}

// BenchmarkBatchPut measures bulk ingestion on a journaled fsync store:
// size sequential Put calls (one fsync each) against one atomic
// PutBatch of the same documents (one group-committed fsync total).
// size=100 is the tracked acceptance row: >= 10x throughput and exactly
// 1 fsync per batch (reported as the fsyncs/batch metric).
func BenchmarkBatchPut(b *testing.B) {
	for _, size := range []int{10, 100} {
		b.Run(fmt.Sprintf("sequential/size=%d", size), shardbench.BatchPutSequential(size))
		b.Run(fmt.Sprintf("size=%d", size), shardbench.BatchPutBatch(size))
	}
}

// BenchmarkHistObserve measures one histogram observation — the cost
// added to every request, fsync, and lock acquisition by the PR-7
// instruments. It must stay in the low tens of nanoseconds; the
// parallel variant checks the atomics don't collapse under the same
// contention the request path sees.
func BenchmarkHistObserve(b *testing.B) {
	b.Run("serial", func(b *testing.B) {
		h := obs.NewDurationHistogram()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Observe(int64(i)%int64(time.Second) + 1)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		h := obs.NewDurationHistogram()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			v := int64(1)
			for pb.Next() {
				h.Observe(v % int64(time.Second))
				v += 4099
			}
		})
	})
}

// flightRecFixture builds a recorder in steady state: the p99 trigger
// armed (so the rolling latency histogram is paid for) and the route's
// slow log full of 50ms entries, so a 200µs request takes the longest
// rejection path — histogram observe, trigger counter, slow-log
// cached-min check — before being turned away.
func flightRecFixture(b *testing.B, sampleEvery int) *flightrec.Recorder {
	b.Helper()
	rec := flightrec.New(flightrec.Config{P99Threshold: 2 * time.Second, SampleEvery: sampleEvery})
	for i := 0; i < 8; i++ {
		rec.Add(&flightrec.Completed{Trace: fmt.Sprintf("seed%d", i), Route: "lineage", Dur: 50 * time.Millisecond})
	}
	return rec
}

// BenchmarkFlightRecord measures the flight recorder's cost per
// completed request. unsampled is the acceptance row: an unremarkable
// request (no error, no shed, under every threshold) must cost
// <100ns; sampled adds building and retaining the full record with a
// span breakdown, the price paid only by the kept minority.
func BenchmarkFlightRecord(b *testing.B) {
	b.Run("unsampled", func(b *testing.B) {
		rec := flightRecFixture(b, -1)
		defer rec.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if rec.Observe("lineage", 200, false, 200*time.Microsecond) {
				b.Fatal("unremarkable request sampled in")
			}
		}
	})
	b.Run("unsampled-parallel", func(b *testing.B) {
		rec := flightRecFixture(b, -1)
		defer rec.Close()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				rec.Observe("lineage", 200, false, 200*time.Microsecond)
			}
		})
	})
	b.Run("sampled", func(b *testing.B) {
		rec := flightRecFixture(b, 1)
		defer rec.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if rec.Observe("lineage", 200, false, 200*time.Microsecond) {
				rec.Add(&flightrec.Completed{
					Trace: "bench-trace",
					Route: "lineage",
					Dur:   200 * time.Microsecond,
					Spans: []flightrec.Span{{Name: "lock", Dur: time.Microsecond}, {Name: "cache", Dur: 2 * time.Microsecond}},
				})
			}
		}
	})
}

// BenchmarkProvParse measures PROV-JSON parsing of a populated run doc.
func BenchmarkProvParse(b *testing.B) {
	run := benchRun(b)
	for i := 0; i < 500; i++ {
		_ = run.LogMetric("loss", metrics.Training, int64(i), float64(i))
	}
	doc, err := run.BuildProv(nil)
	if err != nil {
		b.Fatal(err)
	}
	payload, err := doc.MarshalJSON()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prov.ParseJSON(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// codecBenchDoc builds the populated run document the codec benchmarks
// serialize — the same shape BenchmarkProvParse uses, so json rows are
// directly comparable.
func codecBenchDoc(b *testing.B) *prov.Document {
	b.Helper()
	run := benchRun(b)
	for i := 0; i < 500; i++ {
		_ = run.LogMetric("loss", metrics.Training, int64(i), float64(i))
	}
	doc, err := run.BuildProv(nil)
	if err != nil {
		b.Fatal(err)
	}
	return doc
}

// BenchmarkCodecEncode compares serializing one populated run document
// as PROV-JSON vs the compact binary WAL codec. The binary row is the
// journal-encode hot path; bytes/op shows the wire-size ratio.
func BenchmarkCodecEncode(b *testing.B) {
	doc := codecBenchDoc(b)
	b.Run("json", func(b *testing.B) {
		b.ReportAllocs()
		var n int
		for i := 0; i < b.N; i++ {
			j, err := doc.MarshalJSON()
			if err != nil {
				b.Fatal(err)
			}
			n = len(j)
		}
		b.SetBytes(int64(n))
	})
	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf = prov.AppendBinary(buf[:0], doc)
		}
		b.SetBytes(int64(len(buf)))
	})
}

// BenchmarkCodecDecode compares parsing the two encodings back into a
// Document — the recovery/follower-apply hot path.
func BenchmarkCodecDecode(b *testing.B) {
	doc := codecBenchDoc(b)
	j, err := doc.MarshalJSON()
	if err != nil {
		b.Fatal(err)
	}
	bin := prov.AppendBinary(nil, doc)
	b.Run("json", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(j)))
		for i := 0; i < b.N; i++ {
			if _, err := prov.ParseJSON(j); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(bin)))
		for i := 0; i < b.N; i++ {
			if _, err := prov.ParseBinary(bin); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTrainsimRun measures one full simulated run.
func BenchmarkTrainsimRun(b *testing.B) {
	spec, err := trainsim.PaperSpec(trainsim.MaskedAutoencoder, "600M", 64)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := spec.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
